"""Interface shared by all centroid index implementations."""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CentroidSearchResult:
    """Top-k nearest centroids for one query.

    ``posting_ids`` and ``distances`` (squared L2) are parallel arrays
    ordered by ascending distance.
    """

    posting_ids: np.ndarray
    distances: np.ndarray

    def __len__(self) -> int:
        return len(self.posting_ids)

    @property
    def nearest(self) -> int:
        if len(self.posting_ids) == 0:
            raise LookupError("empty centroid search result")
        return int(self.posting_ids[0])


class CentroidIndex(abc.ABC):
    """Mutable mapping posting id -> centroid with nearest-centroid search.

    Implementations must be safe for concurrent reads with serialized
    writes; SPFresh serializes centroid mutations through the Local
    Rebuilder but searches run concurrently from query threads.
    """

    def __init__(self, dim: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim

    @abc.abstractmethod
    def add(self, posting_id: int, centroid: np.ndarray) -> None:
        """Register a posting centroid. Fails if the id already exists."""

    @abc.abstractmethod
    def remove(self, posting_id: int) -> None:
        """Unregister a posting centroid. Fails if the id is unknown."""

    @abc.abstractmethod
    def search(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        """Return up to ``k`` nearest centroids, ascending by distance."""

    def search_batch(self, queries: np.ndarray, k: int) -> list[CentroidSearchResult]:
        """Answer many queries at once; one result per query row.

        Contract: element ``i`` is bit-identical to ``search(queries[i], k)``
        — batching is a throughput optimization, never a semantic change.
        The base implementation loops; backends override it with vectorized
        variants (brute force answers the whole batch with one fused kernel).
        """
        queries = np.ascontiguousarray(queries, dtype=np.float32)
        if queries.ndim == 1:
            queries = queries.reshape(1, -1)
        return [self.search(query, k) for query in queries]

    @abc.abstractmethod
    def get(self, posting_id: int) -> np.ndarray:
        """Centroid vector for a posting id."""

    @abc.abstractmethod
    def __contains__(self, posting_id: int) -> bool: ...

    @abc.abstractmethod
    def __len__(self) -> int: ...

    @abc.abstractmethod
    def items(self) -> list[tuple[int, np.ndarray]]:
        """All (posting id, centroid) pairs; order unspecified."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Modelled DRAM footprint of the structure."""

    def state_dict(self) -> dict:
        """Serializable state for snapshots (implementation-agnostic)."""
        pairs = self.items()
        return {
            "posting_ids": [pid for pid, _ in pairs],
            "centroids": np.vstack([c for _, c in pairs])
            if pairs
            else np.empty((0, self.dim), dtype=np.float32),
        }

    def load_state_dict(self, state: dict) -> None:
        """Rebuild from a snapshot produced by :meth:`state_dict`."""
        for pid, _ in list(self.items()):
            self.remove(pid)
        for pid, centroid in zip(state["posting_ids"], state["centroids"]):
            self.add(int(pid), np.asarray(centroid, dtype=np.float32))
