"""Balanced k-means tree (BKT) centroid index — SPTAG's tree component.

SPTAG combines balanced k-means trees with a neighborhood graph; the
package's graph variant covers the latter, this module the former. The
tree recursively partitions centroids with small balanced k-means; search
is best-first over subtree centers, scoring leaf entries exactly and
stopping when the closest unvisited subtree cannot beat the current top-k.

Incremental maintenance: inserts descend to the nearest leaf and split it
with k-means when it overflows; removals delete in place via a pid→leaf
map (empty leaves are pruned lazily during splits).
"""

from __future__ import annotations

import heapq
import itertools
import threading

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.clustering.balanced import balanced_kmeans
from repro.util.distance import as_vector, sq_l2, sq_l2_batch, top_k_smallest
from repro.util.errors import IndexError_


class _Node:
    """Tree node: internal (children) or leaf (pid → vector entries)."""

    __slots__ = ("center", "children", "entries")

    def __init__(self, center: np.ndarray) -> None:
        self.center = center
        self.children: list["_Node"] | None = None
        self.entries: dict[int, np.ndarray] | None = {}

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class BKTreeCentroidIndex(CentroidIndex):
    """Centroid index backed by a balanced k-means tree."""

    def __init__(
        self,
        dim: int,
        leaf_size: int = 32,
        branch_factor: int = 4,
        min_leaf_visits: int = 24,
    ) -> None:
        super().__init__(dim)
        if leaf_size < branch_factor:
            raise ValueError("leaf_size must be at least branch_factor")
        self.leaf_size = leaf_size
        self.branch_factor = branch_factor
        self.min_leaf_visits = min_leaf_visits
        self._lock = threading.RLock()
        self._root = _Node(np.zeros(dim, dtype=np.float32))
        self._leaf_of: dict[int, _Node] = {}
        self._rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, posting_id: int, centroid: np.ndarray) -> None:
        centroid = as_vector(centroid, self.dim).copy()
        with self._lock:
            if posting_id in self._leaf_of:
                raise IndexError_(f"centroid for posting {posting_id} exists")
            leaf = self._descend(centroid)
            leaf.entries[posting_id] = centroid
            self._leaf_of[posting_id] = leaf
            if len(leaf.entries) > self.leaf_size:
                self._split_leaf(leaf)

    def remove(self, posting_id: int) -> None:
        with self._lock:
            leaf = self._leaf_of.pop(posting_id, None)
            if leaf is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            del leaf.entries[posting_id]

    def _descend(self, vector: np.ndarray) -> _Node:
        node = self._root
        while not node.is_leaf:
            live = [c for c in node.children if self._subtree_nonempty(c)]
            candidates = live or node.children
            centers = np.vstack([c.center for c in candidates])
            node = candidates[int(sq_l2_batch(vector, centers).argmin())]
        return node

    @staticmethod
    def _subtree_nonempty(node: _Node) -> bool:
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                if current.entries:
                    return True
            else:
                stack.extend(current.children)
        return False

    def _split_leaf(self, leaf: _Node) -> None:
        pids = list(leaf.entries.keys())
        vectors = np.vstack([leaf.entries[pid] for pid in pids])
        k = min(self.branch_factor, len(pids))
        centers, assignments = balanced_kmeans(vectors, k, self._rng, max_iters=6)
        if len(np.unique(assignments)) < 2:
            # Degenerate data (identical centroids): slice evenly.
            assignments = np.arange(len(pids)) % k
            centers = np.vstack(
                [vectors[assignments == j].mean(axis=0) for j in range(k)]
            ).astype(np.float32)
        children = []
        for j in range(k):
            child = _Node(centers[j].astype(np.float32))
            for row in np.nonzero(assignments == j)[0]:
                pid = pids[int(row)]
                child.entries[pid] = leaf.entries[pid]
                self._leaf_of[pid] = child
            children.append(child)
        leaf.entries = None
        leaf.children = children

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        query = as_vector(query, self.dim)
        with self._lock:
            if k <= 0 or not self._leaf_of:
                return CentroidSearchResult(
                    posting_ids=np.empty(0, dtype=np.int64),
                    distances=np.empty(0, dtype=np.float32),
                )
            counter = itertools.count()  # heap tie-breaker
            frontier: list[tuple[float, int, _Node]] = [
                (0.0, next(counter), self._root)
            ]
            found_ids: list[int] = []
            found_dists: list[float] = []
            worst = np.inf
            leaves_visited = 0
            while frontier:
                dist, _, node = heapq.heappop(frontier)
                if (
                    leaves_visited >= self.min_leaf_visits
                    and len(found_ids) >= k
                    and dist > worst
                ):
                    break
                if node.is_leaf:
                    if not node.entries:
                        continue
                    leaves_visited += 1
                    pids = list(node.entries.keys())
                    vectors = np.vstack([node.entries[p] for p in pids])
                    dists = sq_l2_batch(query, vectors)
                    found_ids.extend(pids)
                    found_dists.extend(float(d) for d in dists)
                    if len(found_ids) >= k:
                        worst = float(np.partition(np.array(found_dists), k - 1)[k - 1])
                else:
                    for child in node.children:
                        d = sq_l2(query, child.center)
                        heapq.heappush(frontier, (d, next(counter), child))
            dists_arr = np.array(found_dists, dtype=np.float32)
            top = top_k_smallest(dists_arr, k)
            ids_arr = np.array(found_ids, dtype=np.int64)
            return CentroidSearchResult(
                posting_ids=ids_arr[top], distances=dists_arr[top]
            )

    # ------------------------------------------------------------------
    # lookup / accounting
    # ------------------------------------------------------------------
    def get(self, posting_id: int) -> np.ndarray:
        with self._lock:
            leaf = self._leaf_of.get(posting_id)
            if leaf is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            return leaf.entries[posting_id].copy()

    def __contains__(self, posting_id: int) -> bool:
        with self._lock:
            return posting_id in self._leaf_of

    def __len__(self) -> int:
        with self._lock:
            return len(self._leaf_of)

    def items(self) -> list[tuple[int, np.ndarray]]:
        with self._lock:
            return [
                (pid, leaf.entries[pid].copy())
                for pid, leaf in self._leaf_of.items()
            ]

    def memory_bytes(self) -> int:
        with self._lock:
            vector_bytes = len(self._leaf_of) * self.dim * 4
            node_count = self._count_nodes()
            return vector_bytes + node_count * (self.dim * 4 + 64)

    def _count_nodes(self) -> int:
        count = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def depth(self) -> int:
        """Maximum tree depth (diagnostics)."""
        best = 0
        stack = [(self._root, 1)]
        while stack:
            node, d = stack.pop()
            best = max(best, d)
            if not node.is_leaf:
                stack.extend((c, d + 1) for c in node.children)
        return best
