"""Exact centroid index backed by a compact grow-only matrix.

Rows of deleted centroids are recycled through a free-slot list so the
matrix does not leak under the constant add/remove churn that LIRE's
split/merge operations produce.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.centroids.base import CentroidIndex, CentroidSearchResult
from repro.util.distance import (
    as_matrix,
    as_vector,
    pairwise_sq_l2_exact,
    sq_l2_batch,
    top_k_smallest,
)
from repro.util.errors import IndexError_

_INITIAL_CAPACITY = 64


class BruteForceCentroidIndex(CentroidIndex):
    """Exact top-k centroid search; O(#postings) per query."""

    def __init__(self, dim: int) -> None:
        super().__init__(dim)
        self._lock = threading.RLock()
        self._matrix = np.zeros((_INITIAL_CAPACITY, dim), dtype=np.float32)
        self._row_pid = np.full(_INITIAL_CAPACITY, -1, dtype=np.int64)
        self._pid_row: dict[int, int] = {}
        self._free_rows: list[int] = list(range(_INITIAL_CAPACITY - 1, -1, -1))
        self._active = 0  # rows in [0, _active) may be live; beyond are free

    def _grow(self) -> None:
        old_cap = len(self._matrix)
        new_cap = old_cap * 2
        matrix = np.zeros((new_cap, self.dim), dtype=np.float32)
        matrix[:old_cap] = self._matrix
        row_pid = np.full(new_cap, -1, dtype=np.int64)
        row_pid[:old_cap] = self._row_pid
        self._matrix = matrix
        self._row_pid = row_pid
        self._free_rows.extend(range(new_cap - 1, old_cap - 1, -1))

    def add(self, posting_id: int, centroid: np.ndarray) -> None:
        centroid = as_vector(centroid, self.dim)
        with self._lock:
            if posting_id in self._pid_row:
                raise IndexError_(f"centroid for posting {posting_id} exists")
            if not self._free_rows:
                self._grow()
            row = self._free_rows.pop()
            self._matrix[row] = centroid
            self._row_pid[row] = posting_id
            self._pid_row[posting_id] = row
            self._active = max(self._active, row + 1)

    def remove(self, posting_id: int) -> None:
        with self._lock:
            row = self._pid_row.pop(posting_id, None)
            if row is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            self._row_pid[row] = -1
            self._free_rows.append(row)
            # Shrink the live-row scan window when the top row frees up;
            # without this, LIRE split/merge churn grows [0, _active)
            # monotonically and every search scans dead rows forever.
            if row + 1 == self._active:
                active = row
                while active > 0 and self._row_pid[active - 1] < 0:
                    active -= 1
                self._active = active

    @property
    def active_rows(self) -> int:
        """Width of the row window scanned per search (live rows + holes)."""
        with self._lock:
            return self._active

    def search(self, query: np.ndarray, k: int) -> CentroidSearchResult:
        query = as_vector(query, self.dim)
        with self._lock:
            live = self._row_pid[: self._active] >= 0
            rows = np.nonzero(live)[0]
            if len(rows) == 0 or k <= 0:
                return CentroidSearchResult(
                    posting_ids=np.empty(0, dtype=np.int64),
                    distances=np.empty(0, dtype=np.float32),
                )
            dists = sq_l2_batch(query, self._matrix[rows])
            top = top_k_smallest(dists, k)
            return CentroidSearchResult(
                posting_ids=self._row_pid[rows[top]].copy(),
                distances=dists[top].copy(),
            )

    def search_batch(self, queries: np.ndarray, k: int) -> list[CentroidSearchResult]:
        """All queries against the live rows with one fused distance kernel.

        Bit-identical to per-query :meth:`search`: the same row gather, the
        same per-row distances (``pairwise_sq_l2_exact`` rows match
        ``sq_l2_batch`` exactly), the same stable top-k tie-break.
        """
        queries = as_matrix(queries, self.dim)
        with self._lock:
            live = self._row_pid[: self._active] >= 0
            rows = np.nonzero(live)[0]
            if len(rows) == 0 or k <= 0:
                empty = CentroidSearchResult(
                    posting_ids=np.empty(0, dtype=np.int64),
                    distances=np.empty(0, dtype=np.float32),
                )
                return [empty for _ in range(len(queries))]
            dists = pairwise_sq_l2_exact(queries, self._matrix[rows])
            row_pid = self._row_pid[rows]
            results = []
            for drow in dists:
                top = top_k_smallest(drow, k)
                results.append(
                    CentroidSearchResult(
                        posting_ids=row_pid[top].copy(),
                        distances=drow[top].copy(),
                    )
                )
            return results

    def get(self, posting_id: int) -> np.ndarray:
        with self._lock:
            row = self._pid_row.get(posting_id)
            if row is None:
                raise IndexError_(f"no centroid for posting {posting_id}")
            return self._matrix[row].copy()

    def __contains__(self, posting_id: int) -> bool:
        with self._lock:
            return posting_id in self._pid_row

    def __len__(self) -> int:
        with self._lock:
            return len(self._pid_row)

    def items(self) -> list[tuple[int, np.ndarray]]:
        with self._lock:
            return [
                (pid, self._matrix[row].copy())
                for pid, row in self._pid_row.items()
            ]

    def memory_bytes(self) -> int:
        with self._lock:
            return int(self._matrix.nbytes + self._row_pid.nbytes)
