"""SPFresh (SOSP '23) reproduction: in-place updatable disk ANNS index.

Public entry points:

* :class:`repro.SPFreshIndex` — the paper's system (build / search /
  insert / delete / checkpoint / recover);
* :class:`repro.SPFreshConfig` — every tunable, with ablation presets;
* :mod:`repro.baselines` — SPANN+ and DiskANN/FreshDiskANN comparators;
* :mod:`repro.datasets` — synthetic SIFT-like / SPACEV-like workloads;
* :mod:`repro.bench` — the harness that regenerates the paper's figures.
"""

from repro.core.config import SPFreshConfig
from repro.core.index import SPFreshIndex, SearchResult

__version__ = "1.0.0"

__all__ = ["SPFreshIndex", "SPFreshConfig", "SearchResult", "__version__"]
