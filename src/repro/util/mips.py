"""Maximum inner-product search (MIPS) via reduction to L2.

The SPACEV-style deep NLP encoders the paper mentions rank by inner
product, while LIRE's NPA conditions (and the whole SPANN substrate)
assume a Euclidean space. The standard bridge is the order-preserving
MIPS→L2 reduction (Bachrach et al. / Shrivastava & Li):

* data vector ``x`` (with ``|x| <= M``) becomes
  ``[x, sqrt(M^2 - |x|^2)]``;
* query ``q`` becomes ``[q, 0]``.

Then ``|q' - x'|^2 = |q|^2 + M^2 - 2 <q, x>`` — monotone decreasing in
the inner product — so L2 nearest neighbors of the augmented query are
exactly the maximum-inner-product vectors. :class:`MipsTransform` owns
the bookkeeping (the norm bound M, augmentation, query mapping), and
:class:`MipsSPFreshIndex` wraps a plain SPFresh index so callers insert
and search raw inner-product vectors.
"""

from __future__ import annotations

import numpy as np

from repro.api import QueryRequest, SearchResponse, warn_legacy_query
from repro.util.distance import as_matrix, as_vector


class MipsTransform:
    """Order-preserving augmentation from inner-product to L2 space."""

    def __init__(self, dim: int, norm_bound: float) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if norm_bound <= 0:
            raise ValueError("norm_bound must be positive")
        self.dim = dim
        self.norm_bound = float(norm_bound)

    @classmethod
    def fit(cls, vectors: np.ndarray, headroom: float = 1.25) -> "MipsTransform":
        """Choose the norm bound from data, with headroom for future inserts."""
        vectors = as_matrix(vectors)
        max_norm = float(np.linalg.norm(vectors, axis=1).max()) if len(vectors) else 1.0
        return cls(vectors.shape[1], max(max_norm * headroom, 1e-6))

    @property
    def augmented_dim(self) -> int:
        return self.dim + 1

    def transform_data(self, vectors: np.ndarray) -> np.ndarray:
        """Augment data vectors with the norm-completion coordinate."""
        vectors = as_matrix(vectors, self.dim)
        norms_sq = np.einsum("ij,ij->i", vectors, vectors)
        slack = self.norm_bound**2 - norms_sq
        if (slack < -1e-4).any():
            raise ValueError(
                "vector norm exceeds the transform's bound; refit with a "
                "larger headroom"
            )
        extra = np.sqrt(np.maximum(slack, 0.0)).astype(np.float32)
        return np.hstack([vectors, extra[:, None]])

    def transform_query(self, query: np.ndarray) -> np.ndarray:
        """Augment a query with a zero coordinate."""
        query = as_vector(query, self.dim)
        return np.concatenate([query, np.zeros(1, dtype=np.float32)])

    def inner_products_from_sq_l2(
        self, query: np.ndarray, sq_l2_distances: np.ndarray
    ) -> np.ndarray:
        """Recover exact inner products from augmented L2 distances."""
        query = as_vector(query, self.dim)
        q_norm_sq = float(np.dot(query, query))
        return (q_norm_sq + self.norm_bound**2 - np.asarray(sq_l2_distances)) / 2.0


class MipsSPFreshIndex:
    """Inner-product SPFresh: a transform in front of a plain L2 index.

    Build with raw inner-product vectors; search returns ids ranked by
    descending inner product, with the scores in ``result.distances``
    replaced by the true inner products.
    """

    def __init__(self, index, transform: MipsTransform) -> None:
        self._index = index
        self.transform = transform

    @classmethod
    def build(cls, vectors: np.ndarray, ids=None, config=None, headroom: float = 1.25):
        """Fit the transform on ``vectors`` and build the augmented index."""
        from repro.core.config import SPFreshConfig
        from repro.core.index import SPFreshIndex

        vectors = as_matrix(vectors)
        transform = MipsTransform.fit(vectors, headroom=headroom)
        config = config or SPFreshConfig(dim=transform.augmented_dim)
        if config.dim != transform.augmented_dim:
            config = config.with_overrides(dim=transform.augmented_dim)
        index = SPFreshIndex.build(
            transform.transform_data(vectors), ids=ids, config=config
        )
        return cls(index, transform)

    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        """Insert a raw inner-product vector (augmented internally)."""
        augmented = self.transform.transform_data(vector.reshape(1, -1))[0]
        return self._index.insert(vector_id, augmented)

    def delete(self, vector_id: int) -> float:
        return self._index.delete(vector_id)

    def query(self, request: QueryRequest) -> SearchResponse:
        """Top-k by inner product; scores returned in ``distances``.

        Each query vector is augmented before hitting the inner L2 index
        and each result's squared distances are mapped back to exact
        inner products in place (``SearchResult`` is mutable even though
        the response wrapper is frozen).
        """
        if not isinstance(request, QueryRequest):
            raise TypeError(
                f"query() wants a repro.api.QueryRequest, got "
                f"{type(request).__name__}"
            )
        raw = as_matrix(request.vectors, self.transform.dim)
        augmented = np.vstack(
            [self.transform.transform_query(q) for q in raw]
        )
        response = self._index.query(request.with_vectors(augmented))
        for query, result in zip(raw, response.results):
            result.distances = self.transform.inner_products_from_sq_l2(
                query, result.distances
            ).astype(np.float32)
        return SearchResponse(results=response.results, request=request)

    def search(self, query, k: int | None = None, nprobe: int | None = None):
        """Search facade; positional form deprecated (see docs/api.md)."""
        if isinstance(query, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(query)
        warn_legacy_query("MipsSPFreshIndex.search")
        if k is None:
            raise TypeError("search(vector, k) requires k")
        request = QueryRequest.single(
            as_vector(query, self.transform.dim), k=k, nprobe=nprobe
        )
        return self.query(request).result

    def drain(self) -> int:
        return self._index.drain()

    def __getattr__(self, name):
        return getattr(self._index, name)
