"""Shared low-level utilities: distance kernels, RNG helpers, errors."""

from repro.util.distance import (
    DistanceMetric,
    pairwise_sq_l2,
    sq_l2,
    sq_l2_batch,
    top_k_smallest,
)
from repro.util.errors import (
    ReproError,
    StorageError,
    IndexError_,
    RecoveryError,
    ConfigError,
)
from repro.util.timer import Stopwatch
from repro.util.mips import MipsSPFreshIndex, MipsTransform

__all__ = [
    "DistanceMetric",
    "pairwise_sq_l2",
    "sq_l2",
    "sq_l2_batch",
    "top_k_smallest",
    "ReproError",
    "StorageError",
    "IndexError_",
    "RecoveryError",
    "ConfigError",
    "Stopwatch",
    "MipsSPFreshIndex",
    "MipsTransform",
]
