"""Distance kernels used across the index, clustering, and baselines.

All internal proximity math uses *squared* Euclidean distance: it preserves
argmin/ordering while avoiding the sqrt, exactly as production ANNS engines
do. Vectors are always ``float32`` numpy arrays; callers are responsible for
casting once at the boundary (``as_matrix`` / ``as_vector`` help with that).
"""

from __future__ import annotations

import enum

import numpy as np


class DistanceMetric(enum.Enum):
    """Similarity metric for vector comparison.

    Only squared L2 is exercised by the SPFresh reproduction (the paper's
    NPA conditions assume a Euclidean space), but inner-product is provided
    for the SPACEV-style workloads that use dot-product ranking.
    """

    SQ_L2 = "sq_l2"
    INNER_PRODUCT = "ip"


def as_vector(x, dim: int | None = None) -> np.ndarray:
    """Cast ``x`` to a contiguous float32 1-D vector, validating ``dim``."""
    v = np.ascontiguousarray(x, dtype=np.float32)
    if v.ndim != 1:
        raise ValueError(f"expected 1-D vector, got shape {v.shape}")
    if dim is not None and v.shape[0] != dim:
        raise ValueError(f"expected dim={dim}, got {v.shape[0]}")
    return v


def as_matrix(x, dim: int | None = None) -> np.ndarray:
    """Cast ``x`` to a contiguous float32 2-D matrix, validating ``dim``."""
    m = np.ascontiguousarray(x, dtype=np.float32)
    if m.ndim == 1:
        m = m.reshape(1, -1)
    if m.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {m.shape}")
    if dim is not None and m.shape[1] != dim:
        raise ValueError(f"expected dim={dim}, got {m.shape[1]}")
    return m


def sq_l2(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two vectors.

    Delegates to :func:`sq_l2_batch` so the scalar and batched kernels are
    bit-identical by construction — the contract the vectorized search
    paths (and their parity property tests) rely on.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    return float(sq_l2_batch(a, b.reshape(1, -1))[0])


def sq_l2_batch(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared L2 from one query vector to each row of ``points``.

    Returns a float32 array of shape ``(len(points),)``. Empty ``points``
    yields an empty array rather than raising, so callers can treat empty
    postings uniformly.
    """
    if len(points) == 0:
        return np.empty(0, dtype=np.float32)
    diff = points - query
    return np.einsum("ij,ij->i", diff, diff).astype(np.float32, copy=False)


def pairwise_sq_l2_exact(
    queries: np.ndarray, points: np.ndarray, *, chunk_elems: int = 1 << 23
) -> np.ndarray:
    """All-pairs squared L2 whose rows are bit-identical to ``sq_l2_batch``.

    The expanded-form GEMM in :func:`pairwise_sq_l2` is faster on big
    matrices but rounds differently from the difference form, so it cannot
    be used where batched results must match the single-query path bit for
    bit (deterministic search, the perf gate's recall metrics). This kernel
    broadcasts the difference instead: one fused einsum per call, row ``q``
    equal to ``sq_l2_batch(queries[q], points)`` exactly.

    The broadcast temporary is ``len(queries) x len(points) x dim`` floats;
    ``chunk_elems`` bounds it by splitting along the query axis (chunking
    preserves per-row bit-identity).
    """
    nq, npts = len(queries), len(points)
    if nq == 0 or npts == 0:
        return np.zeros((nq, npts), dtype=np.float32)
    dim = points.shape[1]
    rows_per_chunk = max(1, chunk_elems // max(npts * dim, 1))
    if rows_per_chunk >= nq:
        diff = points[None, :, :] - queries[:, None, :]
        return np.einsum("qnj,qnj->qn", diff, diff).astype(np.float32, copy=False)
    out = np.empty((nq, npts), dtype=np.float32)
    for start in range(0, nq, rows_per_chunk):
        stop = min(start + rows_per_chunk, nq)
        diff = points[None, :, :] - queries[start:stop, None, :]
        out[start:stop] = np.einsum("qnj,qnj->qn", diff, diff)
    return out


def pairwise_sq_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 between rows of ``a`` and rows of ``b``.

    Uses the expanded ``|a|^2 - 2ab + |b|^2`` form for speed and clamps tiny
    negative values produced by floating-point cancellation to zero.
    """
    if len(a) == 0 or len(b) == 0:
        return np.zeros((len(a), len(b)), dtype=np.float32)
    a2 = np.einsum("ij,ij->i", a, a)[:, None]
    b2 = np.einsum("ij,ij->i", b, b)[None, :]
    out = a2 + b2 - 2.0 * (a @ b.T)
    np.maximum(out, 0.0, out=out)
    return out.astype(np.float32, copy=False)


def top_k_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, sorted ascending by value.

    Stable tie-break on index so results are deterministic across runs.
    """
    n = len(values)
    if n == 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, n)
    if k == n:
        order = np.argsort(values, kind="stable")
        return order.astype(np.int64, copy=False)
    part = np.argpartition(values, k - 1)[:k]
    order = part[np.argsort(values[part], kind="stable")]
    return order.astype(np.int64, copy=False)
