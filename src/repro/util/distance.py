"""Distance kernels used across the index, clustering, and baselines.

All internal proximity math uses *squared* Euclidean distance: it preserves
argmin/ordering while avoiding the sqrt, exactly as production ANNS engines
do. Vectors are always ``float32`` numpy arrays; callers are responsible for
casting once at the boundary (``as_matrix`` / ``as_vector`` help with that).
"""

from __future__ import annotations

import enum

import numpy as np


class DistanceMetric(enum.Enum):
    """Similarity metric for vector comparison.

    Only squared L2 is exercised by the SPFresh reproduction (the paper's
    NPA conditions assume a Euclidean space), but inner-product is provided
    for the SPACEV-style workloads that use dot-product ranking.
    """

    SQ_L2 = "sq_l2"
    INNER_PRODUCT = "ip"


def as_vector(x, dim: int | None = None) -> np.ndarray:
    """Cast ``x`` to a contiguous float32 1-D vector, validating ``dim``."""
    v = np.ascontiguousarray(x, dtype=np.float32)
    if v.ndim != 1:
        raise ValueError(f"expected 1-D vector, got shape {v.shape}")
    if dim is not None and v.shape[0] != dim:
        raise ValueError(f"expected dim={dim}, got {v.shape[0]}")
    return v


def as_matrix(x, dim: int | None = None) -> np.ndarray:
    """Cast ``x`` to a contiguous float32 2-D matrix, validating ``dim``."""
    m = np.ascontiguousarray(x, dtype=np.float32)
    if m.ndim == 1:
        m = m.reshape(1, -1)
    if m.ndim != 2:
        raise ValueError(f"expected 2-D matrix, got shape {m.shape}")
    if dim is not None and m.shape[1] != dim:
        raise ValueError(f"expected dim={dim}, got {m.shape[1]}")
    return m


def sq_l2(a: np.ndarray, b: np.ndarray) -> float:
    """Squared Euclidean distance between two vectors."""
    d = a.astype(np.float32, copy=False) - b.astype(np.float32, copy=False)
    return float(np.dot(d, d))


def sq_l2_batch(query: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Squared L2 from one query vector to each row of ``points``.

    Returns a float32 array of shape ``(len(points),)``. Empty ``points``
    yields an empty array rather than raising, so callers can treat empty
    postings uniformly.
    """
    if len(points) == 0:
        return np.empty(0, dtype=np.float32)
    diff = points - query
    return np.einsum("ij,ij->i", diff, diff).astype(np.float32, copy=False)


def pairwise_sq_l2(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared L2 between rows of ``a`` and rows of ``b``.

    Uses the expanded ``|a|^2 - 2ab + |b|^2`` form for speed and clamps tiny
    negative values produced by floating-point cancellation to zero.
    """
    if len(a) == 0 or len(b) == 0:
        return np.zeros((len(a), len(b)), dtype=np.float32)
    a2 = np.einsum("ij,ij->i", a, a)[:, None]
    b2 = np.einsum("ij,ij->i", b, b)[None, :]
    out = a2 + b2 - 2.0 * (a @ b.T)
    np.maximum(out, 0.0, out=out)
    return out.astype(np.float32, copy=False)


def top_k_smallest(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` smallest values, sorted ascending by value.

    Stable tie-break on index so results are deterministic across runs.
    """
    n = len(values)
    if n == 0 or k <= 0:
        return np.empty(0, dtype=np.int64)
    k = min(k, n)
    if k == n:
        order = np.argsort(values, kind="stable")
        return order.astype(np.int64, copy=False)
    part = np.argpartition(values, k - 1)[:k]
    order = part[np.argsort(values[part], kind="stable")]
    return order.astype(np.int64, copy=False)
