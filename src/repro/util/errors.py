"""Exception hierarchy for the repro package.

Every error raised on purpose by this library derives from ``ReproError``
so callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class StorageError(ReproError):
    """Block-device or block-controller level failure (bad id, no space)."""


class OutOfSpaceError(StorageError):
    """The simulated SSD has no free blocks left."""


class IndexError_(ReproError):
    """Vector-index level failure (unknown posting, duplicate vector id).

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class StalePostingError(IndexError_):
    """A posting was deleted concurrently while an operation targeted it.

    Mirrors the paper's "posting-missing" case during concurrent reassigns;
    callers abort and re-execute the job (§4.2.2).
    """


class RecoveryError(ReproError):
    """Snapshot/WAL recovery could not restore a consistent state."""


class InjectedFaultError(StorageError):
    """A fault-injection plan forced this device operation to fail.

    Raised *instead of* performing the I/O, so error'd operations never
    show up in :class:`repro.storage.iostats.IOStats` counters.
    """


class CrashPoint(ReproError):
    """Injected hard crash: the simulated process dies at this operation.

    Raised by the fault-injection layer (device op N, a torn WAL append,
    or a snapshot boundary). Test harnesses catch it at the top of the
    workload loop, discard every in-memory structure, and recover from
    the surviving device + snapshot + WAL — nothing in the library may
    catch and swallow it.
    """
