"""Small timing helpers used by the bench harness and tests."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating wall-clock stopwatch.

    Usage::

        sw = Stopwatch()
        with sw:
            do_work()
        print(sw.elapsed_s)

    The stopwatch accumulates across multiple ``with`` blocks, which is what
    the bench harness needs when timing many small operations.
    """

    def __init__(self) -> None:
        self.elapsed_s = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is not None:
            self.elapsed_s += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        """Zero the accumulated time."""
        self.elapsed_s = 0.0
        self._start = None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed_s * 1e3
