"""File-backed block device: a durable variant of the simulated SSD.

`SimulatedSSD` keeps blocks in memory, which is fine for experiments but
means a "crash" test must hand the same Python object to recovery. The
file-backed device stores blocks in a flat file (block i at offset
``i * block_size``), so an index can be recovered by a *new* process —
the full crash-recovery story: reopen device file, load snapshot, replay
WAL.

The latency model and stats accounting are inherited unchanged: simulated
latencies still come from the profile; the file I/O underneath is an
implementation detail, not part of the modelled device time.
"""

from __future__ import annotations

import os
import threading

from repro.storage.iostats import IOStats
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.util.errors import StorageError


class FileBackedSSD(SimulatedSSD):
    """Block device persisted to a flat file; survives process restarts."""

    def __init__(
        self,
        path: str,
        num_blocks: int,
        profile: SSDProfile | None = None,
    ) -> None:
        # Intentionally skip SimulatedSSD.__init__'s dict store; replicate
        # its parameter handling and use the file as the block store.
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.profile = profile or SSDProfile()
        self.num_blocks = num_blocks
        self.stats = IOStats()
        self._lock = threading.Lock()
        self._zero_block = b"\x00" * self.profile.block_size
        self.path = path
        size = num_blocks * self.profile.block_size
        exists = os.path.exists(path)
        self._fh = open(path, "r+b" if exists else "w+b")
        current = os.path.getsize(path)
        if current < size:
            self._fh.truncate(size)
        elif current > size:
            raise StorageError(
                f"existing device file {path} is {current} bytes, larger than "
                f"the requested geometry ({size}); refusing to shrink it"
            )

    # ------------------------------------------------------------------
    # block primitives (same API + latency accounting as SimulatedSSD)
    # ------------------------------------------------------------------
    def read_blocks(self, block_ids: list[int]) -> tuple[list[bytes], float]:
        out: list[bytes] = []
        with self._lock:
            for bid in block_ids:
                self._check_block_id(bid)
                self._fh.seek(bid * self.block_size)
                out.append(self._fh.read(self.block_size))
        latency = self.profile.read_batch_latency_us(len(block_ids))
        self.stats.record_read(
            len(block_ids), len(block_ids) * self.block_size, latency
        )
        return out, latency

    def write_blocks(self, block_ids: list[int], payloads: list[bytes]) -> float:
        if len(block_ids) != len(payloads):
            raise StorageError("block_ids and payloads length mismatch")
        with self._lock:
            for bid, data in zip(block_ids, payloads):
                self._check_block_id(bid)
                if len(data) > self.block_size:
                    raise StorageError(
                        f"payload of {len(data)} bytes exceeds block size "
                        f"{self.block_size}"
                    )
                if len(data) < self.block_size:
                    data = data + b"\x00" * (self.block_size - len(data))
                self._fh.seek(bid * self.block_size)
                self._fh.write(data)
            self._fh.flush()
        latency = self.profile.write_batch_latency_us(len(block_ids))
        self.stats.record_write(
            len(block_ids), len(block_ids) * self.block_size, latency
        )
        return latency

    def trim(self, block_ids: list[int]) -> None:
        zero = self._zero_block
        with self._lock:
            for bid in block_ids:
                self._check_block_id(bid)
                self._fh.seek(bid * self.block_size)
                self._fh.write(zero)
            self._fh.flush()

    def used_blocks(self) -> int:
        """Blocks with any non-zero byte (diagnostic; O(device) scan)."""
        zero = self._zero_block
        used = 0
        with self._lock:
            self._fh.seek(0)
            for _ in range(self.num_blocks):
                if self._fh.read(self.block_size) != zero:
                    used += 1
        return used

    # ------------------------------------------------------------------
    # stats-free backdoors (fault injection, crash-matrix state priming)
    # ------------------------------------------------------------------
    def peek_block(self, block_id: int) -> bytes:
        with self._lock:
            self._check_block_id(block_id)
            self._fh.seek(block_id * self.block_size)
            return self._fh.read(self.block_size)

    def poke_block(self, block_id: int, payload: bytes) -> None:
        with self._lock:
            self._check_block_id(block_id)
            if len(payload) > self.block_size:
                raise StorageError(
                    f"payload of {len(payload)} bytes exceeds block size "
                    f"{self.block_size}"
                )
            if len(payload) < self.block_size:
                payload = payload + b"\x00" * (self.block_size - len(payload))
            self._fh.seek(block_id * self.block_size)
            self._fh.write(payload)
            self._fh.flush()

    def export_blocks(self) -> dict[int, bytes]:
        """All non-zero blocks (crash-matrix state priming; O(device) scan)."""
        zero = b"\x00" * self.block_size
        out: dict[int, bytes] = {}
        with self._lock:
            self._fh.seek(0)
            for bid in range(self.num_blocks):
                data = self._fh.read(self.block_size)
                if data != zero:
                    out[bid] = data
        return out

    def import_blocks(self, blocks: dict[int, bytes]) -> None:
        zero = b"\x00" * self.block_size
        with self._lock:
            self._fh.seek(0)
            for bid in range(self.num_blocks):
                data = blocks.get(bid, zero)
                if len(data) < self.block_size:
                    data = data + b"\x00" * (self.block_size - len(data))
                self._fh.seek(bid * self.block_size)
                self._fh.write(data)
            self._fh.flush()

    # ------------------------------------------------------------------
    def sync(self) -> None:
        """fsync the backing file (called before declaring a checkpoint)."""
        with self._lock:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        with self._lock:
            self._fh.close()

    @classmethod
    def reopen(
        cls, path: str, num_blocks: int, profile: SSDProfile | None = None
    ) -> "FileBackedSSD":
        """Open an existing device file (the restarted-process path).

        The file must match the requested geometry exactly: a shrunken or
        truncated device file means blocks the previous incarnation wrote
        are gone, and silently re-extending it with zeroes would feed the
        Block Controller phantom empty blocks where posting data used to
        be. That is a storage fault, not a recovery input.
        """
        if not os.path.exists(path):
            raise StorageError(f"no device file at {path}")
        expected = num_blocks * (profile or SSDProfile()).block_size
        actual = os.path.getsize(path)
        if actual != expected:
            raise StorageError(
                f"device file {path} is {actual} bytes but the requested "
                f"geometry ({num_blocks} blocks) needs exactly {expected}; "
                "refusing to reopen a truncated or resized device"
            )
        return cls(path, num_blocks, profile)
