"""Deterministic storage fault injection for crash/recovery testing.

The durability story (paper §4.4: snapshot + WAL replay) is only credible
if recovery survives a *misbehaving* device, not just a clean shutdown.
This module provides the adversary:

* :class:`FaultPlan` — a seeded, fully deterministic fault schedule.
  Every decision is a pure function of ``(seed, op_index)``, so two
  devices running the same operation sequence under equal plans inject
  byte-identical faults (and therefore produce identical
  :class:`~repro.storage.iostats.IOStats`).
* :class:`FaultInjectingSSD` — a wrapper composing over any block device
  with the :class:`~repro.storage.ssd.SimulatedSSD` API (including
  :class:`~repro.storage.filedev.FileBackedSSD`). It counts device
  operations and consults the plan before each one.

Fault taxonomy (see ``docs/fault-model.md`` for the full contract):

========== =================================================================
torn write  a prefix of the batch (plus a partial block) reaches the media,
            then :class:`~repro.util.errors.CrashPoint` is raised — the op
            is never acknowledged and records no stats.
dropped     the write is acknowledged (stats recorded, latency returned)
write       but a subset of blocks silently never hits the media — a
            volatile-cache loss.
read error  :class:`~repro.util.errors.InjectedFaultError` is raised before
            any data moves; the op records no stats (error'd ops must not
            skew latency/amplification counters).
corruption  one byte of one payload is flipped before it hits the media;
            the host sees a successful write.
crash point ``crash_at_op=N`` raises :class:`CrashPoint` at the Nth device
            op — before a read, tearing a write. The crash-matrix harness
            sweeps N over every op of a workload.
========== =================================================================

The same plan also drives the torn-append/corruption hooks of
:class:`~repro.storage.wal.WriteAheadLog` (``wal_tear_at`` /
``wal_corrupt_at``, indexed by lifetime append number) and the
snapshot-boundary faults of
:class:`~repro.storage.snapshot.SnapshotManager` (``snapshot_fault`` at
``snapshot_fault_generation``), so one ``FaultPlan`` describes a full
crash scenario across all three durability channels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.iostats import IOStats
from repro.storage.ssd import SSDProfile
from repro.util.errors import CrashPoint, InjectedFaultError, StorageError

SNAPSHOT_FAULTS = (
    "torn-tmp",  # torn temp file, crash before commit (old snapshot survives)
    "crash-before-commit",  # full temp file written, crash before rename
    "crash-after-commit",  # crash right after rename (WAL not yet truncated)
    "corrupt-published",  # torn blob is committed — load() must detect it
)


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, recorded for audits and determinism checks."""

    op_index: int
    channel: str  # "read" | "write" | "trim" | "wal" | "snapshot"
    kind: str  # "crash" | "torn" | "dropped" | "read-error" | "corrupt"
    detail: str = ""


class FaultPlan:
    """Seeded, deterministic fault schedule.

    The plan holds no mutable state: every decision derives from
    ``(seed, op_index)``, which is what makes a crash reproducible — rerun
    the same workload under the same plan and the same fault fires at the
    same byte. ``disarm()`` turns all injection off (recovery runs on the
    same device object fault-free); ``arm()`` re-enables it for
    crash/recover/resume cycles.
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        crash_at_op: int | None = None,
        read_error_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        dropped_write_rate: float = 0.0,
        corrupt_write_rate: float = 0.0,
        wal_tear_at: tuple[int, int | None] | None = None,
        wal_corrupt_at: tuple[int, int | None] | None = None,
        snapshot_fault: str | None = None,
        snapshot_fault_generation: int | None = None,
    ) -> None:
        for name, rate in (
            ("read_error_rate", read_error_rate),
            ("torn_write_rate", torn_write_rate),
            ("dropped_write_rate", dropped_write_rate),
            ("corrupt_write_rate", corrupt_write_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if torn_write_rate + dropped_write_rate + corrupt_write_rate > 1.0:
            raise ValueError("write fault rates must sum to at most 1")
        if snapshot_fault is not None and snapshot_fault not in SNAPSHOT_FAULTS:
            raise ValueError(
                f"unknown snapshot_fault {snapshot_fault!r}; "
                f"choose from {SNAPSHOT_FAULTS}"
            )
        self.seed = seed
        self.crash_at_op = crash_at_op
        self.read_error_rate = read_error_rate
        self.torn_write_rate = torn_write_rate
        self.dropped_write_rate = dropped_write_rate
        self.corrupt_write_rate = corrupt_write_rate
        self.wal_tear_at = wal_tear_at
        self.wal_corrupt_at = wal_corrupt_at
        self.snapshot_fault = snapshot_fault
        self.snapshot_fault_generation = snapshot_fault_generation
        self.armed = True

    # ------------------------------------------------------------------
    def arm(self) -> "FaultPlan":
        self.armed = True
        return self

    def disarm(self) -> "FaultPlan":
        """Disable all injection (the post-crash recovery runs fault-free)."""
        self.armed = False
        return self

    # ------------------------------------------------------------------
    # deterministic decision streams
    # ------------------------------------------------------------------
    def _rng(self, op_index: int, salt: int) -> random.Random:
        # Explicit integer mixing (not hash()) so the stream is identical
        # across processes and independent of call-order history.
        return random.Random((self.seed + 1) * 1_000_003 + op_index * 7919 + salt)

    def crashes_at(self, op_index: int) -> bool:
        return self.armed and self.crash_at_op == op_index

    def read_error(self, op_index: int) -> bool:
        if not self.armed or self.read_error_rate <= 0.0:
            return False
        return self._rng(op_index, 1).random() < self.read_error_rate

    def write_fault(self, op_index: int) -> str | None:
        """One of None / 'torn' / 'dropped' / 'corrupt' for this write op."""
        if not self.armed:
            return None
        total = self.torn_write_rate + self.dropped_write_rate + self.corrupt_write_rate
        if total <= 0.0:
            return None
        roll = self._rng(op_index, 2).random()
        if roll < self.torn_write_rate:
            return "torn"
        if roll < self.torn_write_rate + self.dropped_write_rate:
            return "dropped"
        if roll < total:
            return "corrupt"
        return None

    def torn_shape(
        self, op_index: int, num_blocks: int, block_size: int
    ) -> tuple[int, int]:
        """(full blocks committed, bytes of the next block) for a torn write."""
        rng = self._rng(op_index, 3)
        keep = rng.randrange(num_blocks) if num_blocks > 0 else 0
        partial = rng.randrange(block_size)
        return keep, partial

    def dropped_blocks(self, op_index: int, num_blocks: int) -> set[int]:
        """Batch positions (not block ids) silently lost by a dropped write."""
        rng = self._rng(op_index, 4)
        count = 1 + rng.randrange(num_blocks)
        return set(rng.sample(range(num_blocks), count))

    def corrupt_site(
        self, op_index: int, num_blocks: int, block_size: int
    ) -> tuple[int, int, int]:
        """(batch position, byte offset, xor mask) for a corrupting write."""
        rng = self._rng(op_index, 5)
        position = rng.randrange(num_blocks)
        offset = rng.randrange(block_size)
        mask = 1 << rng.randrange(8)
        return position, offset, mask

    # ------------------------------------------------------------------
    # WAL / snapshot hooks (consulted by WriteAheadLog and SnapshotManager)
    # ------------------------------------------------------------------
    def wal_action(self, append_index: int) -> tuple[str, int | None] | None:
        """Fault for the Nth WAL append of the log's lifetime, if any."""
        if not self.armed:
            return None
        if self.wal_tear_at is not None and append_index == self.wal_tear_at[0]:
            return ("tear", self.wal_tear_at[1])
        if self.wal_corrupt_at is not None and append_index == self.wal_corrupt_at[0]:
            return ("corrupt", self.wal_corrupt_at[1])
        return None

    def snapshot_action(self, generation: int) -> str | None:
        """Fault for the snapshot save producing ``generation``, if any."""
        if not self.armed or self.snapshot_fault is None:
            return None
        if (
            self.snapshot_fault_generation is not None
            and generation != self.snapshot_fault_generation
        ):
            return None
        return self.snapshot_fault


class FaultInjectingSSD:
    """Block device wrapper that injects faults from a :class:`FaultPlan`.

    Mirrors the :class:`~repro.storage.ssd.SimulatedSSD` API, so the Block
    Controller (and everything above it) runs unmodified. Every
    ``read_blocks`` / ``write_blocks`` / ``trim`` call consumes one *device
    op index*; the plan decides per index. Accounting contract:

    * acknowledged ops (clean, dropped, corrupt) record normal IOStats;
    * failed ops (read errors) and crashed ops (torn writes, crash points)
      record **nothing** — an op the host never saw complete must not skew
      latency or amplification counters.

    Injected faults are appended to :attr:`events` for audits; under a
    fixed seed, two identical op sequences produce identical event lists.
    """

    def __init__(self, inner, plan: FaultPlan | None = None) -> None:
        self.inner = inner
        self.plan = plan
        self.op_index = 0
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # delegated geometry / accounting
    # ------------------------------------------------------------------
    @property
    def profile(self) -> SSDProfile:
        return self.inner.profile

    @property
    def block_size(self) -> int:
        return self.inner.block_size

    @property
    def num_blocks(self) -> int:
        return self.inner.num_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.inner.capacity_bytes

    @property
    def stats(self) -> IOStats:
        return self.inner.stats

    # ------------------------------------------------------------------
    def _next_op(self) -> int:
        index = self.op_index
        self.op_index += 1
        return index

    def _log(self, op_index: int, channel: str, kind: str, detail: str = "") -> None:
        self.events.append(FaultEvent(op_index, channel, kind, detail))

    # ------------------------------------------------------------------
    # block primitives (SimulatedSSD API)
    # ------------------------------------------------------------------
    def read_blocks(self, block_ids: list[int]) -> tuple[list[bytes], float]:
        index = self._next_op()
        plan = self.plan
        if plan is not None and plan.armed:
            if plan.crashes_at(index):
                self._log(index, "read", "crash")
                raise CrashPoint(f"injected crash at device op {index} (read)")
            if plan.read_error(index):
                self._log(index, "read", "read-error")
                raise InjectedFaultError(
                    f"injected read I/O error at device op {index}"
                )
        return self.inner.read_blocks(block_ids)

    def write_blocks(self, block_ids: list[int], payloads: list[bytes]) -> float:
        if len(block_ids) != len(payloads):
            raise StorageError("block_ids and payloads length mismatch")
        index = self._next_op()
        plan = self.plan
        if plan is not None and plan.armed and block_ids:
            if plan.crashes_at(index) or plan.write_fault(index) == "torn":
                keep, partial = plan.torn_shape(
                    index, len(block_ids), self.block_size
                )
                self._tear(block_ids, payloads, keep, partial)
                self._log(
                    index,
                    "write",
                    "torn" if not plan.crashes_at(index) else "crash",
                    f"kept {keep} blocks + {partial} bytes of block {keep}",
                )
                raise CrashPoint(
                    f"injected crash tearing write op {index} after "
                    f"{keep} blocks + {partial} bytes"
                )
            fault = plan.write_fault(index)
            if fault == "dropped":
                dropped = plan.dropped_blocks(index, len(block_ids))
                for position, (bid, data) in enumerate(zip(block_ids, payloads)):
                    if position not in dropped:
                        self.inner.poke_block(bid, data)
                # The host saw the whole batch acknowledged: full latency,
                # full stats — the loss is silent by definition.
                latency = self.profile.write_batch_latency_us(len(block_ids))
                self.stats.record_write(
                    len(block_ids), len(block_ids) * self.block_size, latency
                )
                self._log(
                    index,
                    "write",
                    "dropped",
                    f"lost {len(dropped)}/{len(block_ids)} blocks",
                )
                return latency
            if fault == "corrupt":
                position, offset, mask = plan.corrupt_site(
                    index, len(block_ids), self.block_size
                )
                padded = payloads[position] + b"\x00" * (
                    self.block_size - len(payloads[position])
                )
                payloads = list(payloads)
                payloads[position] = (
                    padded[:offset]
                    + bytes([padded[offset] ^ mask])
                    + padded[offset + 1 :]
                )
                self._log(
                    index,
                    "write",
                    "corrupt",
                    f"flipped bit {mask:#04x} at block {block_ids[position]}"
                    f"+{offset}",
                )
        return self.inner.write_blocks(block_ids, payloads)

    def _tear(
        self,
        block_ids: list[int],
        payloads: list[bytes],
        keep: int,
        partial: int,
    ) -> None:
        """Commit a torn prefix of the batch via the stats-free backdoor."""
        for bid, data in zip(block_ids[:keep], payloads[:keep]):
            self.inner.poke_block(bid, data)
        if keep < len(block_ids) and partial > 0:
            bid = block_ids[keep]
            new = payloads[keep] + b"\x00" * (self.block_size - len(payloads[keep]))
            old = self.inner.peek_block(bid)
            self.inner.poke_block(bid, new[:partial] + old[partial:])

    def read_block(self, block_id: int) -> tuple[bytes, float]:
        data, latency = self.read_blocks([block_id])
        return data[0], latency

    def write_block(self, block_id: int, payload: bytes) -> float:
        return self.write_blocks([block_id], [payload])

    def trim(self, block_ids: list[int]) -> None:
        index = self._next_op()
        plan = self.plan
        if plan is not None and plan.crashes_at(index):
            self._log(index, "trim", "crash")
            raise CrashPoint(f"injected crash at device op {index} (trim)")
        self.inner.trim(block_ids)

    # ------------------------------------------------------------------
    # pass-through maintenance / introspection
    # ------------------------------------------------------------------
    def used_blocks(self) -> int:
        return self.inner.used_blocks()

    def peek_block(self, block_id: int) -> bytes:
        return self.inner.peek_block(block_id)

    def poke_block(self, block_id: int, payload: bytes) -> None:
        self.inner.poke_block(block_id, payload)

    def export_blocks(self) -> dict[int, bytes]:
        return self.inner.export_blocks()

    def import_blocks(self, blocks: dict[int, bytes]) -> None:
        self.inner.import_blocks(blocks)

    def sync(self) -> None:
        if hasattr(self.inner, "sync"):
            self.inner.sync()

    def close(self) -> None:
        if hasattr(self.inner, "close"):
            self.inner.close()
