"""On-"disk" layout of postings (paper §4.3, Storage Data Layout).

A posting is a list of ``<vector id, version number, raw vector>`` tuples
packed into fixed-size SSD blocks. Entries never span a block boundary so
APPEND can rewrite only the tail block, which is the property the paper's
append-optimized layout depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import StorageError


@dataclass
class PostingData:
    """Decoded in-memory view of one posting.

    ``ids`` are int64 vector ids, ``versions`` the uint8 version bytes
    captured at append time, ``vectors`` the raw float32 rows. The three
    arrays always share the same length.
    """

    ids: np.ndarray
    versions: np.ndarray
    vectors: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.ids) == len(self.versions) == len(self.vectors)):
            raise ValueError("PostingData arrays must have equal length")

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def empty(cls, dim: int) -> "PostingData":
        return cls(
            ids=np.empty(0, dtype=np.int64),
            versions=np.empty(0, dtype=np.uint8),
            vectors=np.empty((0, dim), dtype=np.float32),
        )

    @classmethod
    def from_rows(cls, ids, versions, vectors) -> "PostingData":
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        return cls(
            ids=np.asarray(ids, dtype=np.int64).reshape(-1),
            versions=np.asarray(versions, dtype=np.uint8).reshape(-1),
            vectors=vectors,
        )

    def select(self, mask: np.ndarray) -> "PostingData":
        """New PostingData containing only rows where ``mask`` is True."""
        return PostingData(
            ids=self.ids[mask], versions=self.versions[mask], vectors=self.vectors[mask]
        )

    def concat(self, other: "PostingData") -> "PostingData":
        return PostingData(
            ids=np.concatenate([self.ids, other.ids]),
            versions=np.concatenate([self.versions, other.versions]),
            vectors=np.vstack([self.vectors, other.vectors]),
        )


class PostingCodec:
    """Packs posting entries into block payloads and back.

    The codec is parameterized by vector dimensionality and block size; one
    codec instance is shared by the whole index.
    """

    ID_BYTES = 8
    VERSION_BYTES = 1

    def __init__(self, dim: int, block_size: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.block_size = block_size
        self.entry_size = self.ID_BYTES + self.VERSION_BYTES + 4 * dim
        self.entries_per_block = block_size // self.entry_size
        if self.entries_per_block < 1:
            raise StorageError(
                f"block size {block_size} cannot hold one {self.entry_size}-byte "
                f"entry (dim={dim})"
            )
        self._dtype = np.dtype(
            [("id", "<i8"), ("version", "u1"), ("vec", "<f4", (dim,))]
        )

    def blocks_needed(self, num_entries: int) -> int:
        """Blocks required to store ``num_entries`` entries."""
        if num_entries <= 0:
            return 0
        return -(-num_entries // self.entries_per_block)

    def encode(self, data: PostingData) -> list[bytes]:
        """Encode a posting into a list of block payloads."""
        n = len(data)
        if n == 0:
            return []
        packed = np.zeros(n, dtype=self._dtype)
        packed["id"] = data.ids
        packed["version"] = data.versions
        packed["vec"] = data.vectors
        raw = packed.tobytes()
        epb = self.entries_per_block
        payloads: list[bytes] = []
        for start in range(0, n, epb):
            stop = min(start + epb, n)
            payloads.append(raw[start * self.entry_size : stop * self.entry_size])
        return payloads

    def decode(self, payloads: list[bytes], num_entries: int) -> PostingData:
        """Decode block payloads back into a posting of ``num_entries``."""
        if num_entries == 0:
            return PostingData.empty(self.dim)
        expected_blocks = self.blocks_needed(num_entries)
        if len(payloads) < expected_blocks:
            raise StorageError(
                f"need {expected_blocks} blocks for {num_entries} entries, "
                f"got {len(payloads)}"
            )
        epb = self.entries_per_block
        parts: list[bytes] = []
        remaining = num_entries
        for payload in payloads[:expected_blocks]:
            take = min(remaining, epb)
            parts.append(payload[: take * self.entry_size])
            remaining -= take
        packed = np.frombuffer(b"".join(parts), dtype=self._dtype, count=num_entries)
        return PostingData(
            ids=packed["id"].copy(),
            versions=packed["version"].copy(),
            vectors=packed["vec"].copy(),
        )

    def tail_fill(self, num_entries: int) -> int:
        """How many entries sit in the (possibly partial) tail block."""
        if num_entries == 0:
            return 0
        rem = num_entries % self.entries_per_block
        return rem if rem != 0 else self.entries_per_block
