"""On-"disk" layout of postings (paper §4.3, Storage Data Layout).

A posting is a list of ``<vector id, version number, raw vector>`` tuples
packed into fixed-size SSD blocks. Entries never span a block boundary so
APPEND can rewrite only the tail block, which is the property the paper's
append-optimized layout depends on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import StorageError


@dataclass
class PostingData:
    """Decoded in-memory view of one posting.

    ``ids`` are int64 vector ids, ``versions`` the uint8 version bytes
    captured at append time, ``vectors`` the raw float32 rows. The three
    arrays always share the same length.
    """

    ids: np.ndarray
    versions: np.ndarray
    vectors: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.ids) == len(self.versions) == len(self.vectors)):
            raise ValueError("PostingData arrays must have equal length")

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def empty(cls, dim: int) -> "PostingData":
        return cls(
            ids=np.empty(0, dtype=np.int64),
            versions=np.empty(0, dtype=np.uint8),
            vectors=np.empty((0, dim), dtype=np.float32),
        )

    @classmethod
    def from_rows(cls, ids, versions, vectors) -> "PostingData":
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        return cls(
            ids=np.asarray(ids, dtype=np.int64).reshape(-1),
            versions=np.asarray(versions, dtype=np.uint8).reshape(-1),
            vectors=vectors,
        )

    def owns_memory(self) -> bool:
        """True when every column owns its buffer (no views into arenas)."""
        return (
            self.ids.base is None
            and self.versions.base is None
            and self.vectors.base is None
        )

    def owned(self) -> "PostingData":
        """Self if all columns own their memory; otherwise a deep copy.

        ``decode_batch`` returns postings whose columns are zero-copy
        slices of one shared decode arena. Anything that holds a posting
        beyond the current call (the block cache, most importantly) must
        take ownership first, or a later mutation of the arena silently
        rewrites the held posting.
        """
        if self.owns_memory():
            return self
        return PostingData(
            ids=self.ids.copy(),
            versions=self.versions.copy(),
            vectors=self.vectors.copy(),
        )

    def select(self, mask: np.ndarray) -> "PostingData":
        """New PostingData containing only rows where ``mask`` is True."""
        return PostingData(
            ids=self.ids[mask], versions=self.versions[mask], vectors=self.vectors[mask]
        )

    def concat(self, other: "PostingData") -> "PostingData":
        return PostingData(
            ids=np.concatenate([self.ids, other.ids]),
            versions=np.concatenate([self.versions, other.versions]),
            vectors=np.vstack([self.vectors, other.vectors]),
        )


class PostingCodec:
    """Packs posting entries into block payloads and back.

    The codec is parameterized by vector dimensionality and block size; one
    codec instance is shared by the whole index.
    """

    ID_BYTES = 8
    VERSION_BYTES = 1

    def __init__(self, dim: int, block_size: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.block_size = block_size
        self.entry_size = self.ID_BYTES + self.VERSION_BYTES + 4 * dim
        self.entries_per_block = block_size // self.entry_size
        if self.entries_per_block < 1:
            raise StorageError(
                f"block size {block_size} cannot hold one {self.entry_size}-byte "
                f"entry (dim={dim})"
            )
        self._dtype = np.dtype(
            [("id", "<i8"), ("version", "u1"), ("vec", "<f4", (dim,))]
        )

    def blocks_needed(self, num_entries: int) -> int:
        """Blocks required to store ``num_entries`` entries."""
        if num_entries <= 0:
            return 0
        return -(-num_entries // self.entries_per_block)

    def encode(self, data: PostingData) -> list[bytes]:
        """Encode a posting into a list of block payloads."""
        n = len(data)
        if n == 0:
            return []
        packed = np.zeros(n, dtype=self._dtype)
        packed["id"] = data.ids
        packed["version"] = data.versions
        packed["vec"] = data.vectors
        raw = packed.tobytes()
        epb = self.entries_per_block
        payloads: list[bytes] = []
        for start in range(0, n, epb):
            stop = min(start + epb, n)
            payloads.append(raw[start * self.entry_size : stop * self.entry_size])
        return payloads

    def decode(self, payloads: list[bytes], num_entries: int) -> PostingData:
        """Decode block payloads back into a posting of ``num_entries``."""
        if num_entries == 0:
            return PostingData.empty(self.dim)
        expected_blocks = self.blocks_needed(num_entries)
        if len(payloads) < expected_blocks:
            raise StorageError(
                f"need {expected_blocks} blocks for {num_entries} entries, "
                f"got {len(payloads)}"
            )
        epb = self.entries_per_block
        if expected_blocks == 1:
            # Hot path: one zero-copy view straight over the device payload.
            packed = np.frombuffer(payloads[0], dtype=self._dtype, count=num_entries)
        else:
            # Device payloads are padded to the block size, so entries are
            # not contiguous across raw blocks: view each block zero-copy,
            # then concatenate once (no per-block byte slicing/joining).
            views: list[np.ndarray] = []
            remaining = num_entries
            for payload in payloads[:expected_blocks]:
                take = min(remaining, epb)
                views.append(np.frombuffer(payload, dtype=self._dtype, count=take))
                remaining -= take
            packed = np.concatenate(views)
        # Field copies detach from the read-only buffer and make each
        # column contiguous for the distance kernels downstream.
        return PostingData(
            ids=packed["id"].copy(),
            versions=packed["version"].copy(),
            vectors=packed["vec"].copy(),
        )

    def decode_batch(
        self, payloads: list[bytes], num_entries_list: list[int]
    ) -> list["PostingData"]:
        """Decode many postings from one flat block list in a single pass.

        ``payloads`` holds the blocks of every posting back to back, in the
        order of ``num_entries_list``. When all payloads are full device
        blocks (the ParallelGET case) the whole batch is decoded through
        one shared arena — one join, one structured view, one gather, three
        column copies — instead of per-posting ``decode`` calls. The
        returned postings are bit-identical to per-posting decoding; each
        one is a contiguous slice of the arena columns.
        """
        epb = self.entries_per_block
        if any(len(p) != self.block_size for p in payloads):
            # Mixed payload sizes (tests feeding encode() output straight
            # back): fall back to the per-posting path.
            out: list[PostingData] = []
            cursor = 0
            for n in num_entries_list:
                nblocks = self.blocks_needed(n)
                out.append(self.decode(payloads[cursor : cursor + nblocks], n))
                cursor += nblocks
            return out

        nblocks = len(payloads)
        esz = self.entry_size
        if nblocks == 0 and any(num_entries_list):
            raise StorageError("decode_batch got entries but no payload blocks")
        if nblocks:
            # Arena view: every block occupies exactly ``epb`` entry slots,
            # so posting i's entries are the CONTIGUOUS slot range
            # ``[block_cursor * epb, block_cursor * epb + n)`` — only the
            # tail-block padding after them is dead. Copying the columns
            # once (padding slots included) lets each posting be a plain
            # slice, with no per-entry gather at all.
            raw = np.frombuffer(b"".join(payloads), dtype=np.uint8)
            region = raw.reshape(nblocks, self.block_size)[:, : epb * esz]
            packed = np.ascontiguousarray(region).reshape(-1, esz)
            packed = packed.view(self._dtype).reshape(-1)
            ids_all = np.ascontiguousarray(packed["id"])
            versions_all = np.ascontiguousarray(packed["version"])
            vectors_all = np.ascontiguousarray(packed["vec"])
        out = []
        cursor = 0
        for n in num_entries_list:
            if n == 0:
                out.append(PostingData.empty(self.dim))
                continue
            start = cursor * epb
            out.append(
                PostingData(
                    ids=ids_all[start : start + n],
                    versions=versions_all[start : start + n],
                    vectors=vectors_all[start : start + n],
                )
            )
            cursor += self.blocks_needed(n)
        return out

    def tail_fill(self, num_entries: int) -> int:
        """How many entries sit in the (possibly partial) tail block."""
        if num_entries == 0:
            return 0
        rem = num_entries % self.entries_per_block
        return rem if rem != 0 else self.entries_per_block
