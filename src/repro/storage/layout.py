"""On-"disk" layout of postings (paper §4.3, Storage Data Layout).

A posting is a list of ``<vector id, version number, raw vector>`` tuples
packed into fixed-size SSD blocks. Entries never span a block boundary so
APPEND can rewrite only the tail block, which is the property the paper's
append-optimized layout depends on.

Two codecs share this contract:

* :class:`PostingCodec` (layout v1) — the classic exact layout, one
  ``<id, version, vector>`` record per entry.
* :class:`QuantizedPostingCodec` (layout v2, ``sectioned = True``) — a
  two-section layout for compressed scans (docs/quantization.md): a
  *code section* of ``<id, version, quantized code>`` records followed by
  a *vector section* of raw float32 rows. Scans read only the code-block
  prefix; the rerank step reads just the vector blocks covering the
  surviving rows. Both sections keep the never-span-a-block property, so
  APPEND still rewrites at most one partial tail block per section.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import StorageError


@dataclass
class PostingData:
    """Decoded in-memory view of one posting.

    ``ids`` are int64 vector ids, ``versions`` the uint8 version bytes
    captured at append time, ``vectors`` the raw float32 rows. ``codes``
    is the optional uint8 quantized-code matrix carried by the sectioned
    layout (None under the exact v1 codec). All present columns share the
    same length.
    """

    ids: np.ndarray
    versions: np.ndarray
    vectors: np.ndarray
    codes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if not (len(self.ids) == len(self.versions) == len(self.vectors)):
            raise ValueError("PostingData arrays must have equal length")
        if self.codes is not None and len(self.codes) != len(self.ids):
            raise ValueError("PostingData codes must match the other columns")

    def __len__(self) -> int:
        return len(self.ids)

    @classmethod
    def empty(cls, dim: int) -> "PostingData":
        return cls(
            ids=np.empty(0, dtype=np.int64),
            versions=np.empty(0, dtype=np.uint8),
            vectors=np.empty((0, dim), dtype=np.float32),
        )

    @classmethod
    def from_rows(cls, ids, versions, vectors, codes=None) -> "PostingData":
        vectors = np.ascontiguousarray(vectors, dtype=np.float32)
        if vectors.ndim == 1:
            vectors = vectors.reshape(1, -1)
        if codes is not None:
            codes = np.asarray(codes, dtype=np.uint8)
            if codes.ndim == 1:
                codes = codes.reshape(1, -1)
        return cls(
            ids=np.asarray(ids, dtype=np.int64).reshape(-1),
            versions=np.asarray(versions, dtype=np.uint8).reshape(-1),
            vectors=vectors,
            codes=codes,
        )

    def owns_memory(self) -> bool:
        """True when every column owns its buffer (no views into arenas)."""
        return (
            self.ids.base is None
            and self.versions.base is None
            and self.vectors.base is None
            and (self.codes is None or self.codes.base is None)
        )

    def owned(self) -> "PostingData":
        """Self if all columns own their memory; otherwise a deep copy.

        ``decode_batch`` returns postings whose columns are zero-copy
        slices of one shared decode arena. Anything that holds a posting
        beyond the current call (the block cache, most importantly) must
        take ownership first, or a later mutation of the arena silently
        rewrites the held posting.
        """
        if self.owns_memory():
            return self
        return PostingData(
            ids=self.ids.copy(),
            versions=self.versions.copy(),
            vectors=self.vectors.copy(),
            codes=None if self.codes is None else self.codes.copy(),
        )

    def select(self, mask: np.ndarray) -> "PostingData":
        """New PostingData containing only rows where ``mask`` is True."""
        return PostingData(
            ids=self.ids[mask],
            versions=self.versions[mask],
            vectors=self.vectors[mask],
            codes=None if self.codes is None else self.codes[mask],
        )

    def concat(self, other: "PostingData") -> "PostingData":
        # The code column survives only when both sides carry it; the
        # quantized codec re-encodes a missing column deterministically at
        # encode time, so dropping it here never loses information.
        if self.codes is not None and other.codes is not None:
            codes = np.concatenate([self.codes, other.codes])
        else:
            codes = None
        return PostingData(
            ids=np.concatenate([self.ids, other.ids]),
            versions=np.concatenate([self.versions, other.versions]),
            vectors=np.vstack([self.vectors, other.vectors]),
            codes=codes,
        )


@dataclass
class PostingCodes:
    """Code-section view of one posting: ids, versions, quantized codes.

    What a compressed scan works with — no raw vectors attached. Shares
    the column discipline of :class:`PostingData` so version-map helpers
    (``live_view`` / ``live_mask``) work on either.
    """

    ids: np.ndarray
    versions: np.ndarray
    codes: np.ndarray

    def __post_init__(self) -> None:
        if not (len(self.ids) == len(self.versions) == len(self.codes)):
            raise ValueError("PostingCodes arrays must have equal length")

    def __len__(self) -> int:
        return len(self.ids)

    def select(self, mask: np.ndarray) -> "PostingCodes":
        return PostingCodes(
            ids=self.ids[mask], versions=self.versions[mask], codes=self.codes[mask]
        )


class PostingCodec:
    """Packs posting entries into block payloads and back.

    The codec is parameterized by vector dimensionality and block size; one
    codec instance is shared by the whole index.
    """

    ID_BYTES = 8
    VERSION_BYTES = 1

    def __init__(self, dim: int, block_size: int) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = dim
        self.block_size = block_size
        self.entry_size = self.ID_BYTES + self.VERSION_BYTES + 4 * dim
        self.entries_per_block = block_size // self.entry_size
        if self.entries_per_block < 1:
            raise StorageError(
                f"block size {block_size} cannot hold one {self.entry_size}-byte "
                f"entry (dim={dim})"
            )
        self._dtype = np.dtype(
            [("id", "<i8"), ("version", "u1"), ("vec", "<f4", (dim,))]
        )

    def blocks_needed(self, num_entries: int) -> int:
        """Blocks required to store ``num_entries`` entries."""
        if num_entries <= 0:
            return 0
        return -(-num_entries // self.entries_per_block)

    def scan_blocks_needed(self, num_entries: int) -> int:
        """Blocks a scan must read. The exact layout scans everything."""
        return self.blocks_needed(num_entries)

    def encode(self, data: PostingData) -> list[bytes]:
        """Encode a posting into a list of block payloads."""
        n = len(data)
        if n == 0:
            return []
        packed = np.zeros(n, dtype=self._dtype)
        packed["id"] = data.ids
        packed["version"] = data.versions
        packed["vec"] = data.vectors
        raw = packed.tobytes()
        epb = self.entries_per_block
        payloads: list[bytes] = []
        for start in range(0, n, epb):
            stop = min(start + epb, n)
            payloads.append(raw[start * self.entry_size : stop * self.entry_size])
        return payloads

    def decode(self, payloads: list[bytes], num_entries: int) -> PostingData:
        """Decode block payloads back into a posting of ``num_entries``."""
        if num_entries == 0:
            return PostingData.empty(self.dim)
        expected_blocks = self.blocks_needed(num_entries)
        if len(payloads) < expected_blocks:
            raise StorageError(
                f"need {expected_blocks} blocks for {num_entries} entries, "
                f"got {len(payloads)}"
            )
        epb = self.entries_per_block
        if expected_blocks == 1:
            # Hot path: one zero-copy view straight over the device payload.
            packed = np.frombuffer(payloads[0], dtype=self._dtype, count=num_entries)
        else:
            # Device payloads are padded to the block size, so entries are
            # not contiguous across raw blocks: view each block zero-copy,
            # then concatenate once (no per-block byte slicing/joining).
            views: list[np.ndarray] = []
            remaining = num_entries
            for payload in payloads[:expected_blocks]:
                take = min(remaining, epb)
                views.append(np.frombuffer(payload, dtype=self._dtype, count=take))
                remaining -= take
            packed = np.concatenate(views)
        # Field copies detach from the read-only buffer and make each
        # column contiguous for the distance kernels downstream.
        return PostingData(
            ids=packed["id"].copy(),
            versions=packed["version"].copy(),
            vectors=packed["vec"].copy(),
        )

    def decode_batch(
        self, payloads: list[bytes], num_entries_list: list[int]
    ) -> list["PostingData"]:
        """Decode many postings from one flat block list in a single pass.

        ``payloads`` holds the blocks of every posting back to back, in the
        order of ``num_entries_list``. When all payloads are full device
        blocks (the ParallelGET case) the whole batch is decoded through
        one shared arena — one join, one structured view, one gather, three
        column copies — instead of per-posting ``decode`` calls. The
        returned postings are bit-identical to per-posting decoding; each
        one is a contiguous slice of the arena columns.
        """
        epb = self.entries_per_block
        if any(len(p) != self.block_size for p in payloads):
            # Mixed payload sizes (tests feeding encode() output straight
            # back): fall back to the per-posting path.
            out: list[PostingData] = []
            cursor = 0
            for n in num_entries_list:
                nblocks = self.blocks_needed(n)
                out.append(self.decode(payloads[cursor : cursor + nblocks], n))
                cursor += nblocks
            return out

        nblocks = len(payloads)
        esz = self.entry_size
        if nblocks == 0 and any(num_entries_list):
            raise StorageError("decode_batch got entries but no payload blocks")
        if nblocks:
            # Arena view: every block occupies exactly ``epb`` entry slots,
            # so posting i's entries are the CONTIGUOUS slot range
            # ``[block_cursor * epb, block_cursor * epb + n)`` — only the
            # tail-block padding after them is dead. Copying the columns
            # once (padding slots included) lets each posting be a plain
            # slice, with no per-entry gather at all.
            raw = np.frombuffer(b"".join(payloads), dtype=np.uint8)
            region = raw.reshape(nblocks, self.block_size)[:, : epb * esz]
            packed = np.ascontiguousarray(region).reshape(-1, esz)
            packed = packed.view(self._dtype).reshape(-1)
            ids_all = np.ascontiguousarray(packed["id"])
            versions_all = np.ascontiguousarray(packed["version"])
            vectors_all = np.ascontiguousarray(packed["vec"])
        out = []
        cursor = 0
        for n in num_entries_list:
            if n == 0:
                out.append(PostingData.empty(self.dim))
                continue
            start = cursor * epb
            out.append(
                PostingData(
                    ids=ids_all[start : start + n],
                    versions=versions_all[start : start + n],
                    vectors=vectors_all[start : start + n],
                )
            )
            cursor += self.blocks_needed(n)
        return out

    def tail_fill(self, num_entries: int) -> int:
        """How many entries sit in the (possibly partial) tail block."""
        if num_entries == 0:
            return 0
        rem = num_entries % self.entries_per_block
        return rem if rem != 0 else self.entries_per_block


class QuantizedPostingCodec:
    """Two-section posting layout (v2): code blocks, then vector blocks.

    Section 1 packs ``<id, version, code>`` records (``code_bytes`` uint8
    per entry); section 2 packs the raw float32 rows, several per block.
    Each section starts on a block boundary and entries never span a
    block, so:

    * a compressed scan reads only ``code_blocks_needed(n)`` blocks —
      the IO win over the exact layout grows with ``dim / code_bytes``;
    * the rerank step reads just the vector blocks covering surviving
      rows (``row // vectors_per_block``);
    * APPEND rewrites at most one partial tail block *per section*.

    The codec owns the fitted quantizer: ``encode`` computes the code
    column itself whenever ``data.codes`` is None. Encoding is a pure
    function of the fitted state, so every rewrite path (split, merge,
    reassign, flush, GC) stays code/vector coherent without knowing the
    layout exists — the invariant auditor checks exactly that.
    """

    ID_BYTES = 8
    VERSION_BYTES = 1
    sectioned = True

    def __init__(self, dim: int, block_size: int, quantizer) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if quantizer.dim != dim:
            raise StorageError(
                f"quantizer dim {quantizer.dim} does not match codec dim {dim}"
            )
        self.dim = dim
        self.block_size = block_size
        self.quantizer = quantizer
        self.code_bytes = int(quantizer.code_bytes)
        self.code_entry_size = self.ID_BYTES + self.VERSION_BYTES + self.code_bytes
        self.code_entries_per_block = block_size // self.code_entry_size
        self.vector_entry_size = 4 * dim
        self.vectors_per_block = block_size // self.vector_entry_size
        if self.code_entries_per_block < 1 or self.vectors_per_block < 1:
            raise StorageError(
                f"block size {block_size} cannot hold one entry of the "
                f"sectioned layout (dim={dim}, code_bytes={self.code_bytes})"
            )
        self._code_dtype = np.dtype(
            [("id", "<i8"), ("version", "u1"), ("code", "u1", (self.code_bytes,))]
        )

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def code_blocks_needed(self, num_entries: int) -> int:
        if num_entries <= 0:
            return 0
        return -(-num_entries // self.code_entries_per_block)

    def vector_blocks_needed(self, num_entries: int) -> int:
        if num_entries <= 0:
            return 0
        return -(-num_entries // self.vectors_per_block)

    def blocks_needed(self, num_entries: int) -> int:
        """Total blocks for a posting: code section + vector section."""
        return self.code_blocks_needed(num_entries) + self.vector_blocks_needed(
            num_entries
        )

    def scan_blocks_needed(self, num_entries: int) -> int:
        """A compressed scan touches only the code-block prefix."""
        return self.code_blocks_needed(num_entries)

    def code_tail_fill(self, num_entries: int) -> int:
        if num_entries == 0:
            return 0
        rem = num_entries % self.code_entries_per_block
        return rem if rem != 0 else self.code_entries_per_block

    def vector_tail_fill(self, num_entries: int) -> int:
        if num_entries == 0:
            return 0
        rem = num_entries % self.vectors_per_block
        return rem if rem != 0 else self.vectors_per_block

    # ------------------------------------------------------------------
    # encode
    # ------------------------------------------------------------------
    def codes_for(self, data: PostingData) -> np.ndarray:
        """The posting's code column, computing it if absent."""
        if data.codes is not None:
            codes = np.asarray(data.codes, dtype=np.uint8)
        else:
            codes = self.quantizer.encode(data.vectors)
        if codes.shape != (len(data), self.code_bytes):
            raise StorageError(
                f"code column shape {codes.shape} != "
                f"({len(data)}, {self.code_bytes})"
            )
        return codes

    def encode_codes_section(
        self, ids: np.ndarray, versions: np.ndarray, codes: np.ndarray
    ) -> list[bytes]:
        """Pack code records into block payloads (section starts a block)."""
        n = len(ids)
        if n == 0:
            return []
        packed = np.zeros(n, dtype=self._code_dtype)
        packed["id"] = ids
        packed["version"] = versions
        packed["code"] = codes
        raw = packed.tobytes()
        cpb = self.code_entries_per_block
        esz = self.code_entry_size
        return [
            raw[start * esz : min(start + cpb, n) * esz]
            for start in range(0, n, cpb)
        ]

    def encode_vectors_section(self, vectors: np.ndarray) -> list[bytes]:
        """Pack raw float32 rows into block payloads."""
        n = len(vectors)
        if n == 0:
            return []
        raw = np.ascontiguousarray(vectors, dtype=np.float32).tobytes()
        vpb = self.vectors_per_block
        esz = self.vector_entry_size
        return [
            raw[start * esz : min(start + vpb, n) * esz]
            for start in range(0, n, vpb)
        ]

    def encode(self, data: PostingData) -> list[bytes]:
        """Encode a posting: code-section payloads, then vector payloads."""
        if len(data) == 0:
            return []
        codes = self.codes_for(data)
        return self.encode_codes_section(
            data.ids, data.versions, codes
        ) + self.encode_vectors_section(data.vectors)

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def _decode_code_payloads(
        self, payloads: list[bytes], num_entries: int
    ) -> np.ndarray:
        cpb = self.code_entries_per_block
        views: list[np.ndarray] = []
        remaining = num_entries
        for payload in payloads:
            take = min(remaining, cpb)
            views.append(np.frombuffer(payload, dtype=self._code_dtype, count=take))
            remaining -= take
            if remaining == 0:
                break
        return views[0] if len(views) == 1 else np.concatenate(views)

    def decode_codes(self, payloads: list[bytes], num_entries: int) -> PostingCodes:
        """Decode code-section payloads into a :class:`PostingCodes`."""
        if num_entries == 0:
            return PostingCodes(
                ids=np.empty(0, dtype=np.int64),
                versions=np.empty(0, dtype=np.uint8),
                codes=np.empty((0, self.code_bytes), dtype=np.uint8),
            )
        expected = self.code_blocks_needed(num_entries)
        if len(payloads) < expected:
            raise StorageError(
                f"need {expected} code blocks for {num_entries} entries, "
                f"got {len(payloads)}"
            )
        packed = self._decode_code_payloads(payloads[:expected], num_entries)
        return PostingCodes(
            ids=packed["id"].copy(),
            versions=packed["version"].copy(),
            codes=packed["code"].copy().reshape(num_entries, self.code_bytes),
        )

    def decode_codes_batch(
        self, payloads: list[bytes], num_entries_list: list[int]
    ) -> list[PostingCodes]:
        """Arena decode of many code sections from one flat block list.

        Mirrors :meth:`PostingCodec.decode_batch`: when every payload is a
        full device block, one join + one structured view + three column
        copies decode the whole batch, and each posting is a contiguous
        slice of the arena columns.
        """
        cpb = self.code_entries_per_block
        if any(len(p) != self.block_size for p in payloads):
            out: list[PostingCodes] = []
            cursor = 0
            for n in num_entries_list:
                nblocks = self.code_blocks_needed(n)
                out.append(self.decode_codes(payloads[cursor : cursor + nblocks], n))
                cursor += nblocks
            return out

        nblocks = len(payloads)
        esz = self.code_entry_size
        if nblocks == 0 and any(num_entries_list):
            raise StorageError("decode_codes_batch got entries but no payloads")
        if nblocks:
            raw = np.frombuffer(b"".join(payloads), dtype=np.uint8)
            region = raw.reshape(nblocks, self.block_size)[:, : cpb * esz]
            packed = np.ascontiguousarray(region).reshape(-1, esz)
            packed = packed.view(self._code_dtype).reshape(-1)
            ids_all = np.ascontiguousarray(packed["id"])
            versions_all = np.ascontiguousarray(packed["version"])
            codes_all = np.ascontiguousarray(packed["code"])
        out = []
        cursor = 0
        for n in num_entries_list:
            if n == 0:
                out.append(self.decode_codes([], 0))
                continue
            start = cursor * cpb
            out.append(
                PostingCodes(
                    ids=ids_all[start : start + n],
                    versions=versions_all[start : start + n],
                    codes=codes_all[start : start + n],
                )
            )
            cursor += self.code_blocks_needed(n)
        return out

    def decode_vector_block(self, payload: bytes, count: int) -> np.ndarray:
        """Decode one vector-section block into ``(count, dim)`` float32."""
        return np.frombuffer(
            payload, dtype="<f4", count=count * self.dim
        ).reshape(count, self.dim)

    def _decode_vector_payloads(
        self, payloads: list[bytes], num_entries: int
    ) -> np.ndarray:
        vpb = self.vectors_per_block
        views: list[np.ndarray] = []
        remaining = num_entries
        for payload in payloads:
            take = min(remaining, vpb)
            views.append(self.decode_vector_block(payload, take))
            remaining -= take
            if remaining == 0:
                break
        return views[0] if len(views) == 1 else np.vstack(views)

    def decode(self, payloads: list[bytes], num_entries: int) -> PostingData:
        """Decode full-posting payloads (both sections) into PostingData."""
        if num_entries == 0:
            return PostingData.empty(self.dim)
        cb = self.code_blocks_needed(num_entries)
        vb = self.vector_blocks_needed(num_entries)
        if len(payloads) < cb + vb:
            raise StorageError(
                f"need {cb + vb} blocks for {num_entries} entries, "
                f"got {len(payloads)}"
            )
        codes = self.decode_codes(payloads[:cb], num_entries)
        vectors = self._decode_vector_payloads(payloads[cb : cb + vb], num_entries)
        return PostingData(
            ids=codes.ids,
            versions=codes.versions,
            vectors=vectors.copy(),
            codes=codes.codes,
        )

    def decode_batch(
        self, payloads: list[bytes], num_entries_list: list[int]
    ) -> list[PostingData]:
        """Decode many full postings from one flat block list."""
        out: list[PostingData] = []
        cursor = 0
        for n in num_entries_list:
            nblocks = self.blocks_needed(n)
            out.append(self.decode(payloads[cursor : cursor + nblocks], n))
            cursor += nblocks
        return out
