"""Deterministic simulated NVMe SSD (substitute for SPDK + raw device).

The paper's Block Controller issues raw 4K block I/O through SPDK. Here a
block device is modelled as an in-memory array of fixed-size blocks with a
simple but faithful latency model:

* each block read/write costs a fixed device latency;
* the device services up to ``queue_depth`` block requests in parallel, so a
  batch of ``n`` blocks completes in ``ceil(n / queue_depth)`` waves.

This reproduces the two effects the paper's latency numbers depend on:
ParallelGET hides per-posting latency (one wave for many postings), while a
grown posting (SPANN+) needs more blocks and therefore more waves. All
latencies are *simulated* values returned to callers; nothing sleeps.
"""

from __future__ import annotations

import math
import threading

from repro.storage.iostats import IOStats
from repro.util.errors import StorageError


class SSDProfile:
    """Latency/parallelism parameters of the simulated device.

    Defaults approximate a datacenter NVMe drive: ~90us 4K random read,
    ~20us write (write-back cache), queue depth 32.
    """

    def __init__(
        self,
        block_size: int = 4096,
        read_latency_us: float = 90.0,
        write_latency_us: float = 20.0,
        queue_depth: int = 32,
    ) -> None:
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if read_latency_us < 0 or write_latency_us < 0:
            raise ValueError("latencies must be non-negative")
        self.block_size = block_size
        self.read_latency_us = read_latency_us
        self.write_latency_us = write_latency_us
        self.queue_depth = queue_depth

    def read_batch_latency_us(self, num_blocks: int) -> float:
        """Simulated completion latency of a batch of block reads."""
        if num_blocks <= 0:
            return 0.0
        waves = math.ceil(num_blocks / self.queue_depth)
        return waves * self.read_latency_us

    def write_batch_latency_us(self, num_blocks: int) -> float:
        """Simulated completion latency of a batch of block writes."""
        if num_blocks <= 0:
            return 0.0
        waves = math.ceil(num_blocks / self.queue_depth)
        return waves * self.write_latency_us


class SimulatedSSD:
    """Fixed-capacity block device with simulated latency and I/O stats.

    Thread-safe: a single lock guards block contents. Contention is
    negligible because operations only copy bytes.
    """

    def __init__(self, num_blocks: int, profile: SSDProfile | None = None) -> None:
        if num_blocks <= 0:
            raise ValueError("num_blocks must be positive")
        self.profile = profile or SSDProfile()
        self.num_blocks = num_blocks
        self.stats = IOStats()
        self._lock = threading.Lock()
        # Sparse store: unwritten blocks read back as zeroes. The shared
        # zero block keeps hole reads allocation-free on the hot path.
        self._blocks: dict[int, bytes] = {}
        self._zero_block = b"\x00" * self.block_size

    @property
    def block_size(self) -> int:
        return self.profile.block_size

    @property
    def capacity_bytes(self) -> int:
        return self.num_blocks * self.block_size

    def _check_block_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise StorageError(
                f"block id {block_id} out of range [0, {self.num_blocks})"
            )

    def read_blocks(self, block_ids: list[int]) -> tuple[list[bytes], float]:
        """Read a batch of blocks; returns (data, simulated latency in us).

        The batch is dispatched as one parallel I/O submission, matching the
        controller's Concurrent I/O Request Queue.
        """
        zero = self._zero_block
        out: list[bytes] = []
        with self._lock:
            for bid in block_ids:
                self._check_block_id(bid)
                out.append(self._blocks.get(bid, zero))
        latency = self.profile.read_batch_latency_us(len(block_ids))
        self.stats.record_read(
            len(block_ids), len(block_ids) * self.block_size, latency
        )
        return out, latency

    def write_blocks(self, block_ids: list[int], payloads: list[bytes]) -> float:
        """Write a batch of blocks; returns simulated latency in us."""
        if len(block_ids) != len(payloads):
            raise StorageError("block_ids and payloads length mismatch")
        with self._lock:
            for bid, data in zip(block_ids, payloads):
                self._check_block_id(bid)
                if len(data) > self.block_size:
                    raise StorageError(
                        f"payload of {len(data)} bytes exceeds block size "
                        f"{self.block_size}"
                    )
                if len(data) < self.block_size:
                    data = data + b"\x00" * (self.block_size - len(data))
                self._blocks[bid] = bytes(data)
        latency = self.profile.write_batch_latency_us(len(block_ids))
        self.stats.record_write(
            len(block_ids), len(block_ids) * self.block_size, latency
        )
        return latency

    def read_block(self, block_id: int) -> tuple[bytes, float]:
        data, latency = self.read_blocks([block_id])
        return data[0], latency

    def write_block(self, block_id: int, payload: bytes) -> float:
        return self.write_blocks([block_id], [payload])

    def trim(self, block_ids: list[int]) -> None:
        """Discard block contents (free-pool release); costs no device time."""
        with self._lock:
            for bid in block_ids:
                self._check_block_id(bid)
                self._blocks.pop(bid, None)

    def used_blocks(self) -> int:
        """Number of blocks holding written (non-trimmed) data."""
        with self._lock:
            return len(self._blocks)

    # ------------------------------------------------------------------
    # stats-free backdoors (fault injection, crash-matrix state priming)
    # ------------------------------------------------------------------
    def peek_block(self, block_id: int) -> bytes:
        """Raw block content with no stats or simulated latency."""
        with self._lock:
            self._check_block_id(block_id)
            return self._blocks.get(block_id, self._zero_block)

    def poke_block(self, block_id: int, payload: bytes) -> None:
        """Write raw block content with no stats or simulated latency."""
        with self._lock:
            self._check_block_id(block_id)
            if len(payload) > self.block_size:
                raise StorageError(
                    f"payload of {len(payload)} bytes exceeds block size "
                    f"{self.block_size}"
                )
            self._blocks[block_id] = bytes(payload) + b"\x00" * (
                self.block_size - len(payload)
            )

    def export_blocks(self) -> dict[int, bytes]:
        """Copy of all written blocks (crash-matrix trials restart from it)."""
        with self._lock:
            return dict(self._blocks)

    def import_blocks(self, blocks: dict[int, bytes]) -> None:
        """Replace device contents wholesale; no stats, no latency."""
        with self._lock:
            for bid in blocks:
                self._check_block_id(int(bid))
            self._blocks = {int(b): bytes(data) for b, data in blocks.items()}
