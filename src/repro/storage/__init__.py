"""SSD-backed storage substrate (paper §4.3).

The paper's Block Controller runs on SPDK against a raw NVMe device. This
package substitutes a deterministic simulated block device
(:class:`SimulatedSSD`) whose latency model is driven by block counts and a
bounded internal queue, plus the Block Controller proper: posting→block
mapping, free-block pool, GET/ParallelGET/APPEND/PUT, and the snapshot/WAL
machinery for crash recovery (§4.4).
"""

from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.storage.filedev import FileBackedSSD
from repro.storage.faults import FaultEvent, FaultInjectingSSD, FaultPlan
from repro.storage.iostats import IOStats, IOWindow
from repro.storage.layout import PostingCodec, PostingData
from repro.storage.controller import BlockController
from repro.storage.wal import WriteAheadLog, WalRecord, WalReplayReport
from repro.storage.snapshot import SnapshotManager
from repro.storage.cache import CachedBlockController

__all__ = [
    "SimulatedSSD",
    "FileBackedSSD",
    "FaultEvent",
    "FaultInjectingSSD",
    "FaultPlan",
    "SSDProfile",
    "IOStats",
    "IOWindow",
    "PostingCodec",
    "PostingData",
    "BlockController",
    "WriteAheadLog",
    "WalRecord",
    "WalReplayReport",
    "SnapshotManager",
    "CachedBlockController",
]
