"""I/O accounting for the simulated SSD.

The paper's evaluation reports device IOPS (Figure 8, Figure 9) and the
latency benefits of append-only posting updates come entirely from reduced
read/write amplification. ``IOStats`` tracks exact per-operation counters so
benches can report IOPS and amplification without touching real hardware.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


class IOStats:
    """Thread-safe cumulative I/O counters for one device."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.block_reads = 0
        self.block_writes = 0
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.busy_us = 0.0

    def record_read(self, blocks: int, nbytes: int, latency_us: float) -> None:
        with self._lock:
            self.block_reads += blocks
            self.read_ops += 1
            self.bytes_read += nbytes
            self.busy_us += latency_us

    def record_write(self, blocks: int, nbytes: int, latency_us: float) -> None:
        with self._lock:
            self.block_writes += blocks
            self.write_ops += 1
            self.bytes_written += nbytes
            self.busy_us += latency_us

    def snapshot(self) -> "IOWindow":
        """Capture current counters for later delta computation."""
        with self._lock:
            return IOWindow(
                block_reads=self.block_reads,
                block_writes=self.block_writes,
                read_ops=self.read_ops,
                write_ops=self.write_ops,
                bytes_read=self.bytes_read,
                bytes_written=self.bytes_written,
                busy_us=self.busy_us,
            )

    @property
    def total_block_ios(self) -> int:
        with self._lock:
            return self.block_reads + self.block_writes

    def since(self, earlier: "IOWindow") -> "IOWindow":
        """Counters accumulated since ``earlier`` (a prior :meth:`snapshot`).

        Convenience for the common measure-a-window idiom::

            before = ssd.stats.snapshot()
            ...workload...
            window = ssd.stats.since(before)
        """
        return self.snapshot().delta(earlier)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IOStats(reads={self.block_reads}, writes={self.block_writes}, "
            f"bytes_read={self.bytes_read}, bytes_written={self.bytes_written})"
        )


@dataclass(frozen=True)
class IOWindow:
    """Immutable counter snapshot; subtract two to get a measurement window."""

    block_reads: int
    block_writes: int
    read_ops: int
    write_ops: int
    bytes_read: int
    bytes_written: int
    busy_us: float

    def delta(self, earlier: "IOWindow") -> "IOWindow":
        """Counters accumulated between ``earlier`` and this snapshot."""
        return IOWindow(
            block_reads=self.block_reads - earlier.block_reads,
            block_writes=self.block_writes - earlier.block_writes,
            read_ops=self.read_ops - earlier.read_ops,
            write_ops=self.write_ops - earlier.write_ops,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            busy_us=self.busy_us - earlier.busy_us,
        )

    @property
    def block_ios(self) -> int:
        return self.block_reads + self.block_writes

    def iops(self, wall_s: float) -> float:
        """Block I/Os per second over a wall-clock window."""
        if wall_s <= 0:
            return 0.0
        return self.block_ios / wall_s

    def read_amplification(self, useful_bytes: int) -> float:
        """Device bytes read per logically useful byte (0 when undefined)."""
        if useful_bytes <= 0:
            return 0.0
        return self.bytes_read / useful_bytes

    def write_amplification(self, useful_bytes: int) -> float:
        """Device bytes written per logically useful byte (0 when undefined)."""
        if useful_bytes <= 0:
            return 0.0
        return self.bytes_written / useful_bytes

    def to_metrics(self, prefix: str = "io") -> dict[str, float]:
        """Flatten the window into perf-harness metric names.

        Every counter here is deterministic under a seeded single-threaded
        workload, so these land in the gated section of ``BENCH_*.json``.
        """
        sep = "_" if prefix and not prefix.endswith("_") else ""
        key = f"{prefix}{sep}" if prefix else ""
        return {
            f"{key}block_reads": float(self.block_reads),
            f"{key}block_writes": float(self.block_writes),
            f"{key}read_ops": float(self.read_ops),
            f"{key}write_ops": float(self.write_ops),
            f"{key}bytes_read": float(self.bytes_read),
            f"{key}bytes_written": float(self.bytes_written),
            f"{key}busy_us": round(self.busy_us, 3),
        }
