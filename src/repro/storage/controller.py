"""Block Controller (paper §4.3): posting store over the simulated SSD.

Responsibilities, mirroring the paper:

* **Block Mapping** — posting id → (length, SSD block offsets), kept in
  memory; one entry is modelled at 40 bytes as in the paper.
* **Free Block Pool** — allocation and (optionally deferred) release of
  blocks; deferral implements the pre-release buffer used by snapshots.
* **Posting API** — GET, ParallelGET, APPEND (tail-block read-modify-write
  only), PUT, DELETE. All return simulated device latency so callers can
  attribute I/O time to foreground/background work.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.metrics.profiling import NULL_PROFILER, Profiler
from repro.storage.layout import PostingCodec, PostingCodes, PostingData
from repro.storage.ssd import SimulatedSSD
from repro.util.errors import OutOfSpaceError, StalePostingError, StorageError

MAPPING_ENTRY_BYTES = 40  # paper: "a block mapping entry only consumes 40 bytes"


@dataclass
class _PostingMeta:
    length: int
    blocks: list[int] = field(default_factory=list)


class BlockController:
    """Thread-safe posting store with simulated latency accounting."""

    def __init__(
        self,
        ssd: SimulatedSSD,
        codec: PostingCodec,
        profiler: Profiler | None = None,
    ) -> None:
        if codec.block_size != ssd.block_size:
            raise StorageError("codec block size must match device block size")
        self.ssd = ssd
        self.codec = codec
        self.profiler = profiler or NULL_PROFILER
        self._lock = threading.RLock()
        self._mapping: dict[int, _PostingMeta] = {}
        self._free: deque[int] = deque(range(ssd.num_blocks))
        self._defer_release = False
        self._pre_release: list[int] = []

    # ------------------------------------------------------------------
    # free pool
    # ------------------------------------------------------------------
    def _alloc(self, n: int) -> list[int]:
        if len(self._free) < n:
            raise OutOfSpaceError(
                f"need {n} free blocks, only {len(self._free)} available"
            )
        return [self._free.popleft() for _ in range(n)]

    def _release(self, blocks: list[int]) -> None:
        if not blocks:
            return
        if self._defer_release:
            self._pre_release.extend(blocks)
        else:
            self.ssd.trim(blocks)
            self._free.extend(blocks)

    def begin_defer_release(self) -> None:
        """Route freed blocks to the pre-release buffer (snapshot window)."""
        with self._lock:
            self._defer_release = True

    def end_defer_release(self) -> list[int]:
        """Stop deferral and flush the pre-release buffer to the free pool.

        Returns the block ids that were released, for audit/testing.
        """
        with self._lock:
            self._defer_release = False
            released = self._pre_release
            self._pre_release = []
            self.ssd.trim(released)
            self._free.extend(released)
            return released

    @property
    def free_block_count(self) -> int:
        with self._lock:
            return len(self._free)

    # ------------------------------------------------------------------
    # posting API
    # ------------------------------------------------------------------
    def exists(self, posting_id: int) -> bool:
        with self._lock:
            return posting_id in self._mapping

    def length(self, posting_id: int) -> int:
        """Entry count of a posting (includes stale replicas, as on disk)."""
        with self._lock:
            meta = self._mapping.get(posting_id)
            if meta is None:
                raise StalePostingError(f"posting {posting_id} does not exist")
            return meta.length

    def posting_ids(self) -> list[int]:
        with self._lock:
            return list(self._mapping.keys())

    @property
    def num_postings(self) -> int:
        with self._lock:
            return len(self._mapping)

    def put(self, posting_id: int, data: PostingData) -> float:
        """Write a full posting (create or overwrite). Returns latency (us)."""
        payloads = self.codec.encode(data)
        with self._lock:
            new_blocks = self._alloc(len(payloads))
            with self.profiler.section("io"):
                latency = (
                    self.ssd.write_blocks(new_blocks, payloads) if payloads else 0.0
                )
            old = self._mapping.get(posting_id)
            self._mapping[posting_id] = _PostingMeta(len(data), new_blocks)
            if old is not None:
                self._release(old.blocks)
            return latency

    def create(self, posting_id: int, data: PostingData) -> float:
        """PUT that requires the posting id to be unused."""
        with self._lock:
            if posting_id in self._mapping:
                raise StorageError(f"posting {posting_id} already exists")
            return self.put(posting_id, data)

    def get(self, posting_id: int) -> tuple[PostingData, float]:
        """Read one posting. Returns (data, simulated latency in us)."""
        with self._lock:
            meta = self._mapping.get(posting_id)
            if meta is None:
                raise StalePostingError(f"posting {posting_id} does not exist")
            with self.profiler.section("io"):
                payloads, latency = self.ssd.read_blocks(meta.blocks)
            with self.profiler.section("decode"):
                return self.codec.decode(payloads, meta.length), latency

    def parallel_get(
        self, posting_ids: list[int]
    ) -> tuple[dict[int, PostingData], float]:
        """Read many postings in one batched device submission.

        Missing postings (deleted concurrently) are silently skipped, which
        is what the searcher needs — a posting that vanished mid-query has
        been split and its vectors are reachable via the new postings.
        """
        with self._lock:
            metas: list[tuple[int, _PostingMeta]] = []
            all_blocks: list[int] = []
            for pid in posting_ids:
                meta = self._mapping.get(pid)
                if meta is None:
                    continue
                metas.append((pid, meta))
                all_blocks.extend(meta.blocks)
            with self.profiler.section("io"):
                payloads, latency = self.ssd.read_blocks(all_blocks)
            with self.profiler.section("decode"):
                datas = self.codec.decode_batch(
                    payloads, [meta.length for _, meta in metas]
                )
                out = {pid: data for (pid, _), data in zip(metas, datas)}
            return out, latency

    def append(self, posting_id: int, data: PostingData) -> float:
        """Append entries to a posting's tail (paper's APPEND).

        Only the tail block is read-modified-written; full blocks of new data
        are written directly. The mapping entry is swapped atomically and the
        replaced tail block is released.
        """
        if len(data) == 0:
            return 0.0
        if getattr(self.codec, "sectioned", False):
            return self._append_sectioned(posting_id, data)
        with self._lock:
            meta = self._mapping.get(posting_id)
            if meta is None:
                raise StalePostingError(f"posting {posting_id} does not exist")
            latency = 0.0
            epb = self.codec.entries_per_block
            tail_fill = self.codec.tail_fill(meta.length)
            if meta.length > 0 and tail_fill < epb:
                # Tail block is partial: re-read its entries and merge.
                tail_block = meta.blocks[-1]
                with self.profiler.section("io"):
                    payloads, lat = self.ssd.read_blocks([tail_block])
                latency += lat
                with self.profiler.section("decode"):
                    tail_entries = self.codec.decode(payloads, tail_fill)
                merged = tail_entries.concat(data)
                keep_blocks = meta.blocks[:-1]
                released = [tail_block]
            else:
                merged = data
                keep_blocks = list(meta.blocks)
                released = []
            new_payloads = self.codec.encode(merged)
            new_blocks = self._alloc(len(new_payloads))
            with self.profiler.section("io"):
                latency += self.ssd.write_blocks(new_blocks, new_payloads)
            self._mapping[posting_id] = _PostingMeta(
                meta.length + len(data), keep_blocks + new_blocks
            )
            self._release(released)
            return latency

    def _append_sectioned(self, posting_id: int, data: PostingData) -> float:
        """APPEND under the two-section quantized layout.

        Each section keeps the entries-never-span-a-block property, so the
        append re-reads at most one partial tail block per section (one
        batched submission), then writes the merged tails plus the new
        full blocks. The mapping keeps the untouched full blocks of both
        sections: ``[code keep, code new, vector keep, vector new]``.
        """
        codec = self.codec
        with self._lock:
            meta = self._mapping.get(posting_id)
            if meta is None:
                raise StalePostingError(f"posting {posting_id} does not exist")
            old_n = meta.length
            cb = codec.code_blocks_needed(old_n)
            code_blocks, vec_blocks = meta.blocks[:cb], meta.blocks[cb:]

            code_tail = codec.code_tail_fill(old_n)
            vec_tail = codec.vector_tail_fill(old_n)
            code_partial = 0 < code_tail < codec.code_entries_per_block
            vec_partial = 0 < vec_tail < codec.vectors_per_block

            read_blocks: list[int] = []
            if code_partial:
                read_blocks.append(code_blocks[-1])
            if vec_partial:
                read_blocks.append(vec_blocks[-1])
            latency = 0.0
            payloads: list[bytes] = []
            if read_blocks:
                with self.profiler.section("io"):
                    payloads, lat = self.ssd.read_blocks(read_blocks)
                latency += lat

            new_codes = codec.codes_for(data)
            cursor = 0
            if code_partial:
                tail = codec.decode_codes([payloads[cursor]], code_tail)
                cursor += 1
                merged_ids = np.concatenate([tail.ids, data.ids])
                merged_versions = np.concatenate([tail.versions, data.versions])
                merged_codes = np.concatenate([tail.codes, new_codes])
                code_keep, code_released = code_blocks[:-1], [code_blocks[-1]]
            else:
                merged_ids, merged_versions = data.ids, data.versions
                merged_codes = new_codes
                code_keep, code_released = list(code_blocks), []
            if vec_partial:
                tail_vecs = codec.decode_vector_block(payloads[cursor], vec_tail)
                merged_vecs = np.vstack([tail_vecs, data.vectors])
                vec_keep, vec_released = vec_blocks[:-1], [vec_blocks[-1]]
            else:
                merged_vecs = data.vectors
                vec_keep, vec_released = list(vec_blocks), []

            code_payloads = codec.encode_codes_section(
                merged_ids, merged_versions, merged_codes
            )
            vec_payloads = codec.encode_vectors_section(merged_vecs)
            new_blocks = self._alloc(len(code_payloads) + len(vec_payloads))
            code_new = new_blocks[: len(code_payloads)]
            vec_new = new_blocks[len(code_payloads) :]
            with self.profiler.section("io"):
                latency += self.ssd.write_blocks(
                    new_blocks, code_payloads + vec_payloads
                )
            self._mapping[posting_id] = _PostingMeta(
                old_n + len(data), code_keep + code_new + vec_keep + vec_new
            )
            self._release(code_released + vec_released)
            return latency

    def parallel_get_codes(
        self, posting_ids: list[int]
    ) -> tuple[dict[int, PostingCodes], float]:
        """Read only the code sections of many postings in one submission.

        The compressed-scan read path: touches ``code_blocks_needed(n)``
        blocks per posting instead of the full posting. Missing postings
        are skipped, same as :meth:`parallel_get`. Requires a sectioned
        codec.
        """
        codec = self.codec
        if not getattr(codec, "sectioned", False):
            raise StorageError("parallel_get_codes requires a sectioned codec")
        with self._lock:
            metas: list[tuple[int, _PostingMeta]] = []
            all_blocks: list[int] = []
            for pid in posting_ids:
                meta = self._mapping.get(pid)
                if meta is None:
                    continue
                metas.append((pid, meta))
                all_blocks.extend(meta.blocks[: codec.code_blocks_needed(meta.length)])
            with self.profiler.section("io"):
                payloads, latency = self.ssd.read_blocks(all_blocks)
            with self.profiler.section("decode"):
                codes = codec.decode_codes_batch(
                    payloads, [meta.length for _, meta in metas]
                )
                out = {pid: data for (pid, _), data in zip(metas, codes)}
            return out, latency

    def parallel_get_vector_rows(
        self, requests: list[tuple[int, "np.ndarray"]]
    ) -> tuple[dict[int, "np.ndarray"], float]:
        """Read specific exact-vector rows of many postings (rerank path).

        ``requests`` is ``[(posting_id, row_indices), ...]`` with row
        indices into the on-disk posting (stale entries included, sorted
        ascending). Only the vector-section blocks covering the requested
        rows are read — one batched submission for the whole request set.
        Returns ``{posting_id: (len(rows), dim) float32}``; missing
        postings are skipped. Requires a sectioned codec.
        """
        codec = self.codec
        if not getattr(codec, "sectioned", False):
            raise StorageError(
                "parallel_get_vector_rows requires a sectioned codec"
            )
        vpb = codec.vectors_per_block
        with self._lock:
            plan: list[tuple[int, np.ndarray, int, np.ndarray]] = []
            all_blocks: list[int] = []
            for pid, rows in requests:
                meta = self._mapping.get(pid)
                if meta is None:
                    continue
                rows = np.asarray(rows, dtype=np.intp)
                if len(rows) == 0:
                    continue
                if rows[-1] >= meta.length:
                    raise StorageError(
                        f"row {int(rows[-1])} out of range for posting {pid} "
                        f"of length {meta.length}"
                    )
                cb = codec.code_blocks_needed(meta.length)
                vec_blocks = meta.blocks[cb:]
                need = np.unique(rows // vpb)
                all_blocks.extend(vec_blocks[int(b)] for b in need)
                plan.append((pid, rows, meta.length, need))
            with self.profiler.section("io"):
                payloads, latency = self.ssd.read_blocks(all_blocks)
            with self.profiler.section("decode"):
                out: dict[int, np.ndarray] = {}
                if plan and all(
                    len(p) == codec.block_size for p in payloads
                ):
                    # Arena decode: view every fetched block as float32
                    # rows at once, then ONE fancy gather pulls all
                    # requested rows across every posting. Bytes are
                    # identical to the per-block path, so values are too.
                    vbytes = vpb * codec.dim * 4
                    raw = np.frombuffer(
                        b"".join(payloads), dtype=np.uint8
                    ).reshape(len(payloads), codec.block_size)
                    arena = (
                        np.ascontiguousarray(raw[:, :vbytes])
                        .view("<f4")
                        .reshape(len(payloads), vpb, codec.dim)
                    )
                    aj_parts: list[np.ndarray] = []
                    loc_parts: list[np.ndarray] = []
                    cursor = 0
                    for pid, rows, length, need in plan:
                        block_of = rows // vpb
                        aj_parts.append(
                            cursor + np.searchsorted(need, block_of)
                        )
                        loc_parts.append(rows - block_of * vpb)
                        cursor += len(need)
                    rows_all = arena[
                        np.concatenate(aj_parts), np.concatenate(loc_parts)
                    ]
                    pos = 0
                    for pid, rows, length, need in plan:
                        out[pid] = rows_all[pos : pos + len(rows)]
                        pos += len(rows)
                    return out, latency
                cursor = 0
                for pid, rows, length, need in plan:
                    gathered = np.empty((len(rows), codec.dim), dtype=np.float32)
                    last_block = codec.vector_blocks_needed(length) - 1
                    block_of = rows // vpb
                    for b in need:
                        count = (
                            codec.vector_tail_fill(length)
                            if int(b) == last_block
                            else vpb
                        )
                        block_vecs = codec.decode_vector_block(
                            payloads[cursor], count
                        )
                        cursor += 1
                        in_block = block_of == b
                        gathered[in_block] = block_vecs[rows[in_block] - b * vpb]
                    out[pid] = gathered
            return out, latency

    def delete(self, posting_id: int) -> None:
        """Remove a posting and release its blocks."""
        with self._lock:
            meta = self._mapping.pop(posting_id, None)
            if meta is None:
                raise StalePostingError(f"posting {posting_id} does not exist")
            self._release(meta.blocks)

    # ------------------------------------------------------------------
    # introspection / recovery support
    # ------------------------------------------------------------------
    def mapping_memory_bytes(self) -> int:
        """Modelled DRAM footprint of the block mapping (40 B per posting)."""
        with self._lock:
            return len(self._mapping) * MAPPING_ENTRY_BYTES

    def total_entries(self) -> int:
        """Sum of posting lengths, i.e. on-disk entries incl. stale replicas."""
        with self._lock:
            return sum(m.length for m in self._mapping.values())

    def state_dict(self) -> dict:
        """Serializable snapshot of mapping + free pool (for SnapshotManager)."""
        with self._lock:
            return {
                "mapping": {
                    pid: (m.length, list(m.blocks)) for pid, m in self._mapping.items()
                },
                "free": list(self._free),
                "pre_release": list(self._pre_release),
            }

    def load_state_dict(self, state: dict) -> None:
        """Restore mapping + free pool from a snapshot.

        The state is cross-checked before it is installed: every block id
        must fit the device geometry and no block may be claimed twice
        (by two postings, or by a posting and the free pool). A snapshot
        that passes its CRC footer but fails these checks describes a
        device the controller cannot safely write to — raising here turns
        silent future corruption into an explicit recovery failure.
        """
        mapping = {
            int(pid): _PostingMeta(int(length), [int(b) for b in blocks])
            for pid, (length, blocks) in state["mapping"].items()
        }
        free = deque(int(b) for b in state["free"])
        pre_release = [int(b) for b in state.get("pre_release", [])]

        claimed: set[int] = set()
        def _claim(block_id: int, owner: str) -> None:
            if not 0 <= block_id < self.ssd.num_blocks:
                raise StorageError(
                    f"snapshot state references block {block_id} outside the "
                    f"device geometry [0, {self.ssd.num_blocks})"
                )
            if block_id in claimed:
                raise StorageError(
                    f"snapshot state claims block {block_id} twice "
                    f"(second claim by {owner})"
                )
            claimed.add(block_id)

        for pid, meta in mapping.items():
            for block_id in meta.blocks:
                _claim(block_id, f"posting {pid}")
        for block_id in free:
            _claim(block_id, "free pool")
        for block_id in pre_release:
            _claim(block_id, "pre-release buffer")

        with self._lock:
            self._mapping = mapping
            self._free = free
            self._pre_release = pre_release
