"""Snapshot manager (paper §4.4).

A snapshot captures the in-memory index state (centroid index, version map,
block mapping + free pool). The on-disk posting blocks themselves do not
need copying because the Block Controller's copy-on-write block allocation
plus the pre-release buffer keeps every block referenced by the last
snapshot intact until the *next* snapshot lands.

Snapshots are written atomically (tmp file + rename) and versioned by a
monotonically increasing generation number.
"""

from __future__ import annotations

import os
import pickle
import tempfile

from repro.util.errors import RecoveryError

_SNAPSHOT_NAME = "index.snapshot"


class SnapshotManager:
    """Persists and restores index state dictionaries.

    ``directory=None`` keeps snapshots in memory, which is enough for the
    crash-injection tests that tear down the index object but not the
    process.
    """

    def __init__(self, directory: str | None = None) -> None:
        self.directory = directory
        self.generation = 0
        self._memory_snapshot: bytes | None = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            existing = self._snapshot_path()
            if os.path.exists(existing):
                self.generation = self._read_generation(existing)

    def _snapshot_path(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, _SNAPSHOT_NAME)

    @staticmethod
    def _read_generation(path: str) -> int:
        try:
            with open(path, "rb") as fh:
                blob = pickle.load(fh)
            return int(blob.get("generation", 0))
        except Exception as exc:  # corrupt snapshot is a recovery error
            raise RecoveryError(f"cannot read snapshot at {path}: {exc}") from exc

    def save(self, state: dict) -> int:
        """Persist ``state`` atomically; returns the new generation number."""
        self.generation += 1
        blob = {"generation": self.generation, "state": state}
        payload = pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL)
        if self.directory is None:
            self._memory_snapshot = payload
        else:
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp_path, self._snapshot_path())
            finally:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
        return self.generation

    def load(self) -> dict | None:
        """Return the latest snapshot state, or None if none was taken."""
        if self.directory is None:
            if self._memory_snapshot is None:
                return None
            blob = pickle.loads(self._memory_snapshot)
        else:
            path = self._snapshot_path()
            if not os.path.exists(path):
                return None
            try:
                with open(path, "rb") as fh:
                    blob = pickle.load(fh)
            except Exception as exc:
                raise RecoveryError(f"corrupt snapshot at {path}: {exc}") from exc
        self.generation = int(blob["generation"])
        return blob["state"]

    @property
    def has_snapshot(self) -> bool:
        if self.directory is None:
            return self._memory_snapshot is not None
        return os.path.exists(self._snapshot_path())
