"""Snapshot manager (paper §4.4).

A snapshot captures the in-memory index state (centroid index, version map,
block mapping + free pool). The on-disk posting blocks themselves do not
need copying because the Block Controller's copy-on-write block allocation
plus the pre-release buffer keeps every block referenced by the last
snapshot intact until the *next* snapshot lands.

Snapshots are written atomically (tmp file + rename) and versioned by a
monotonically increasing generation number. Every snapshot carries an
integrity footer — ``magic | crc32(payload) | len(payload)`` — so a torn
or bit-flipped snapshot is *detected* at load time (raising
:class:`~repro.util.errors.RecoveryError`) instead of being unpickled into
silently wrong index state.

Fault injection: a :class:`~repro.storage.faults.FaultPlan` passed as
``faults`` can tear the temp-file write, crash before or after the atomic
rename, or publish a torn blob — the crash matrix uses these to verify
that the previous snapshot plus the un-truncated WAL always recover.
"""

from __future__ import annotations

import os
import pickle
import struct
import tempfile
import zlib

from repro.util.errors import CrashPoint, RecoveryError

_SNAPSHOT_NAME = "index.snapshot"
_FOOTER = struct.Struct("<4sII")  # magic, crc32(payload), len(payload)
_FOOTER_MAGIC = b"SPF1"


def _seal(payload: bytes) -> bytes:
    """Append the integrity footer to a pickled snapshot payload."""
    return payload + _FOOTER.pack(
        _FOOTER_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
    )


def _unseal(raw: bytes, origin: str) -> dict:
    """Verify the footer and unpickle; raises RecoveryError on any damage."""
    if len(raw) < _FOOTER.size:
        raise RecoveryError(
            f"snapshot at {origin} is {len(raw)} bytes — too short to hold "
            "an integrity footer; treating as corrupt"
        )
    magic, crc, length = _FOOTER.unpack(raw[-_FOOTER.size :])
    payload = raw[: -_FOOTER.size]
    if magic != _FOOTER_MAGIC:
        raise RecoveryError(
            f"snapshot at {origin} has no integrity footer (bad magic); "
            "refusing to load unverifiable state"
        )
    if length != len(payload) or zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise RecoveryError(
            f"snapshot at {origin} failed its integrity check "
            f"(footer says {length} bytes, found {len(payload)}); "
            "torn or corrupt snapshot"
        )
    try:
        return pickle.loads(payload)
    except Exception as exc:
        raise RecoveryError(f"cannot decode snapshot at {origin}: {exc}") from exc


class SnapshotManager:
    """Persists and restores index state dictionaries.

    ``directory=None`` keeps snapshots in memory, which is enough for the
    crash-injection tests that tear down the index object but not the
    process.
    """

    def __init__(self, directory: str | None = None, faults=None) -> None:
        self.directory = directory
        self.faults = faults
        self.generation = 0
        self._memory_snapshot: bytes | None = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
            existing = self._snapshot_path()
            if os.path.exists(existing):
                self.generation = self._read_generation(existing)

    def _snapshot_path(self) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, _SNAPSHOT_NAME)

    @staticmethod
    def _read_generation(path: str) -> int:
        with open(path, "rb") as fh:
            blob = _unseal(fh.read(), path)
        return int(blob.get("generation", 0))

    def save(self, state: dict) -> int:
        """Persist ``state`` atomically; returns the new generation number."""
        self.generation += 1
        blob = {"generation": self.generation, "state": state}
        sealed = _seal(pickle.dumps(blob, protocol=pickle.HIGHEST_PROTOCOL))
        fault = None
        if self.faults is not None:
            fault = self.faults.snapshot_action(self.generation)
        data = sealed
        if fault in ("torn-tmp", "corrupt-published"):
            # A torn write: only a prefix of the blob reaches the media.
            data = sealed[: max(1, len(sealed) // 2)]
        if self.directory is None:
            if fault in ("torn-tmp", "crash-before-commit"):
                raise CrashPoint(
                    f"injected crash before committing snapshot "
                    f"generation {self.generation}"
                )
            self._memory_snapshot = data
            if fault == "crash-after-commit":
                raise CrashPoint(
                    f"injected crash after committing snapshot "
                    f"generation {self.generation}"
                )
        else:
            fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                if fault in ("torn-tmp", "crash-before-commit"):
                    raise CrashPoint(
                        f"injected crash before committing snapshot "
                        f"generation {self.generation}"
                    )
                os.replace(tmp_path, self._snapshot_path())
                if fault == "crash-after-commit":
                    raise CrashPoint(
                        f"injected crash after committing snapshot "
                        f"generation {self.generation}"
                    )
            finally:
                if os.path.exists(tmp_path):
                    os.unlink(tmp_path)
        return self.generation

    def load(self) -> dict | None:
        """Return the latest snapshot state, or None if none was taken.

        Raises :class:`RecoveryError` if the stored snapshot fails its
        integrity check — a detected-corrupt snapshot must never be
        silently restored.
        """
        if self.directory is None:
            if self._memory_snapshot is None:
                return None
            blob = _unseal(self._memory_snapshot, "<memory>")
        else:
            path = self._snapshot_path()
            if not os.path.exists(path):
                return None
            with open(path, "rb") as fh:
                blob = _unseal(fh.read(), path)
        self.generation = int(blob["generation"])
        return blob["state"]

    @property
    def has_snapshot(self) -> bool:
        if self.directory is None:
            return self._memory_snapshot is not None
        return os.path.exists(self._snapshot_path())

    # ------------------------------------------------------------------
    # raw blob access (crash-matrix state priming, restart simulation)
    # ------------------------------------------------------------------
    def export_blob(self) -> bytes | None:
        """Raw sealed snapshot bytes, or None if no snapshot exists."""
        if self.directory is None:
            return self._memory_snapshot
        path = self._snapshot_path()
        if not os.path.exists(path):
            return None
        with open(path, "rb") as fh:
            return fh.read()

    def import_blob(self, payload: bytes | None) -> None:
        """Install raw snapshot bytes as the current snapshot.

        The blob is *not* validated here — corrupt imports are how the
        fault tests exercise :meth:`load`'s integrity checking.
        """
        if self.directory is None:
            self._memory_snapshot = payload
        else:
            path = self._snapshot_path()
            if payload is None:
                if os.path.exists(path):
                    os.unlink(path)
            else:
                fd, tmp_path = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
                with os.fdopen(fd, "wb") as fh:
                    fh.write(payload)
                os.replace(tmp_path, path)
