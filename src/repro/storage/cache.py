"""LRU posting cache in front of the Block Controller.

Production disk-based ANNS deployments serve a large fraction of probes
from the OS page cache or an application-level buffer pool; the paper's
device-IOPS numbers are what remains after that layer. This wrapper makes
the effect explicit and measurable: a bounded LRU over decoded postings,
write-invalidated by APPEND/PUT/DELETE so readers never observe stale
posting bytes (version-map filtering still applies on top, as always).

Cache hits cost a modelled DRAM latency instead of device waves; the
hit/miss counters feed the cache ablation bench.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.storage.controller import BlockController
from repro.storage.layout import PostingData


class CachedBlockController:
    """Read-through LRU cache over a :class:`BlockController`.

    Exposes the same posting API; only read paths change. ``capacity`` is
    the number of postings held; ``hit_latency_us`` the modelled cost of a
    cached read (DRAM copy, not device waves).
    """

    def __init__(
        self,
        inner: BlockController,
        capacity: int = 256,
        hit_latency_us: float = 2.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.inner = inner
        self.capacity = capacity
        self.hit_latency_us = hit_latency_us
        self._lock = threading.Lock()
        self._cache: "OrderedDict[int, PostingData]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # cache mechanics
    # ------------------------------------------------------------------
    def _cache_get(self, posting_id: int) -> PostingData | None:
        with self._lock:
            data = self._cache.get(posting_id)
            if data is not None:
                self._cache.move_to_end(posting_id)
                self.hits += 1
            else:
                self.misses += 1
            return data

    def _cache_put(self, posting_id: int, data: PostingData) -> None:
        # Copy-on-insert: ``parallel_get`` hands out zero-copy slices of
        # the shared decode arena (PostingCodec.decode_batch), and callers
        # may mutate what they were handed. The cache outlives the call,
        # so it must own its bytes — ``owned()`` copies exactly when the
        # columns are views and is free on the single-GET path, whose
        # decode already returns owned columns.
        data = data.owned()
        with self._lock:
            self._cache[posting_id] = data
            self._cache.move_to_end(posting_id)
            while len(self._cache) > self.capacity:
                self._cache.popitem(last=False)

    def invalidate(self, posting_id: int) -> None:
        with self._lock:
            self._cache.pop(posting_id, None)

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def cached_postings(self) -> int:
        with self._lock:
            return len(self._cache)

    # ------------------------------------------------------------------
    # read paths (cached)
    # ------------------------------------------------------------------
    def get(self, posting_id: int) -> tuple[PostingData, float]:
        cached = self._cache_get(posting_id)
        if cached is not None:
            return cached, self.hit_latency_us
        data, latency = self.inner.get(posting_id)
        self._cache_put(posting_id, data)
        return data, latency

    def parallel_get(
        self, posting_ids: list[int]
    ) -> tuple[dict[int, PostingData], float]:
        out: dict[int, PostingData] = {}
        missing: list[int] = []
        for pid in posting_ids:
            cached = self._cache_get(pid)
            if cached is not None:
                out[pid] = cached
            else:
                missing.append(pid)
        hit_latency = self.hit_latency_us if out else 0.0
        device_latency = 0.0
        if missing:
            fetched, device_latency = self.inner.parallel_get(missing)
            for pid, data in fetched.items():
                out[pid] = data
                self._cache_put(pid, data)
        # Hits are served from DRAM while the device round-trip for the
        # misses is in flight, so a mixed batch completes when the slower
        # of the two paths does — not after both in sequence.
        return out, max(hit_latency, device_latency)

    # ------------------------------------------------------------------
    # write paths (invalidate, delegate)
    # ------------------------------------------------------------------
    def put(self, posting_id: int, data: PostingData) -> float:
        self.invalidate(posting_id)
        return self.inner.put(posting_id, data)

    def create(self, posting_id: int, data: PostingData) -> float:
        self.invalidate(posting_id)
        return self.inner.create(posting_id, data)

    def append(self, posting_id: int, data: PostingData) -> float:
        self.invalidate(posting_id)
        return self.inner.append(posting_id, data)

    def delete(self, posting_id: int) -> None:
        self.invalidate(posting_id)
        self.inner.delete(posting_id)

    # ------------------------------------------------------------------
    # pure delegation
    # ------------------------------------------------------------------
    def __getattr__(self, name):
        return getattr(self.inner, name)

    def memory_bytes(self) -> int:
        """Modelled DRAM cost of cached postings (ids+versions+vectors)."""
        with self._lock:
            total = 0
            for data in self._cache.values():
                total += data.ids.nbytes + data.versions.nbytes + data.vectors.nbytes
            return total
