"""Write-ahead log for crash recovery (paper §4.4).

Update requests arriving between two snapshots are appended to the WAL;
recovery replays them on top of the latest snapshot. Records use a compact
binary framing with a per-record CRC32::

    magic(1) | op(1) | vector_id(8) | payload_len(4) | crc32(4) | payload

The CRC covers (op, vector_id, payload_len, payload), so a flipped byte
anywhere in a record — header or payload — is detected. Replay never
raises on bad data; it classifies damage instead:

* a **torn tail** (clean EOF mid-record, the crash-during-append case)
  ends the replay, dropping only the partial record;
* a **corrupt record** in the middle of the log is *quarantined*: replay
  scans forward for the next frame that parses with a valid CRC and
  continues from there, counting the skipped records and bytes in a
  :class:`WalReplayReport` so recovery can surface what was lost.

The log also participates in fault injection: a
:class:`~repro.storage.faults.FaultPlan` passed as ``faults`` can tear an
append mid-frame (raising :class:`~repro.util.errors.CrashPoint`, the
crash-during-logging case) or silently corrupt a frame on its way down.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.util.errors import CrashPoint

_WAL_MAGIC = 0xA5
_FRAME = struct.Struct("<BBqII")  # magic, op, vector id, payload len, crc32
_CRC_PREFIX = struct.Struct("<BqI")  # the crc'd header fields (op, id, len)
_MAX_PAYLOAD = 1 << 26  # 64 MiB: anything larger is a corrupt length field
OP_INSERT = 1
OP_DELETE = 2


@dataclass(frozen=True)
class WalRecord:
    """One logged update. ``vector`` is None for deletes."""

    op: int
    vector_id: int
    vector: np.ndarray | None

    @property
    def is_insert(self) -> bool:
        return self.op == OP_INSERT


@dataclass
class WalReplayReport:
    """Damage accounting for one replay pass."""

    records_ok: int = 0
    records_quarantined: int = 0
    bytes_quarantined: int = 0
    torn_tail_bytes: int = 0

    @property
    def clean(self) -> bool:
        return self.records_quarantined == 0 and self.torn_tail_bytes == 0


def _encode_frame(op: int, vector_id: int, payload: bytes) -> bytes:
    crc = zlib.crc32(_CRC_PREFIX.pack(op, vector_id, len(payload)) + payload)
    return _FRAME.pack(_WAL_MAGIC, op, vector_id, len(payload), crc & 0xFFFFFFFF) + payload


def _parse_frame(buf: bytes, pos: int):
    """Try to parse one frame at ``pos``.

    Returns ``(record, end, status)`` with status one of ``"ok"``,
    ``"short-header"``, ``"bad-header"``, ``"short-payload"``, ``"bad-crc"``.
    The record is only non-None for ``"ok"``.
    """
    if pos + _FRAME.size > len(buf):
        return None, len(buf), "short-header"
    magic, op, vector_id, nbytes, crc = _FRAME.unpack_from(buf, pos)
    if (
        magic != _WAL_MAGIC
        or op not in (OP_INSERT, OP_DELETE)
        or nbytes > _MAX_PAYLOAD
        or (op == OP_DELETE and nbytes != 0)
        or (op == OP_INSERT and (nbytes == 0 or nbytes % 4 != 0))
    ):
        return None, pos, "bad-header"
    end = pos + _FRAME.size + nbytes
    if end > len(buf):
        return None, len(buf), "short-payload"
    payload = buf[pos + _FRAME.size : end]
    actual = zlib.crc32(_CRC_PREFIX.pack(op, vector_id, nbytes) + payload)
    if actual & 0xFFFFFFFF != crc:
        return None, pos, "bad-crc"
    vector = None
    if op == OP_INSERT:
        vector = np.frombuffer(payload, dtype=np.float32).copy()
    return WalRecord(op=op, vector_id=vector_id, vector=vector), end, "ok"


def _resync(buf: bytes, start: int) -> int:
    """First offset >= start holding a complete valid frame; len(buf) if none."""
    pos = start
    limit = len(buf) - _FRAME.size
    while pos <= limit:
        if buf[pos] == _WAL_MAGIC:
            _, _, status = _parse_frame(buf, pos)
            if status == "ok":
                return pos
        pos += 1
    return len(buf)


class WriteAheadLog:
    """Append-only update log, file-backed or in-memory.

    Pass ``path=None`` for an in-memory log (fast tests); a string path gives
    a durable file that survives reopen — the crash-recovery tests reopen the
    same path to simulate a restart. ``faults`` attaches a
    :class:`~repro.storage.faults.FaultPlan` whose WAL hooks can tear or
    corrupt individual appends (indexed by lifetime append number).
    """

    def __init__(
        self, path: str | None = None, sync: bool = False, faults=None
    ) -> None:
        self.path = path
        self.sync = sync
        self.faults = faults
        self._record_count = 0
        self._appends_total = 0  # lifetime appends; never reset by truncate
        if path is None:
            self._fh: io.BufferedRandom | io.BytesIO = io.BytesIO()
        else:
            # Append mode keeps existing records (restart after crash).
            self._fh = open(path, "a+b")
            self._record_count = sum(1 for _ in self.replay())

    def log_insert(self, vector_id: int, vector: np.ndarray) -> None:
        payload = np.ascontiguousarray(vector, dtype=np.float32).tobytes()
        self._append(OP_INSERT, vector_id, payload)

    def log_delete(self, vector_id: int) -> None:
        self._append(OP_DELETE, vector_id, b"")

    def _append(self, op: int, vector_id: int, payload: bytes) -> None:
        frame = _encode_frame(op, vector_id, payload)
        append_index = self._appends_total
        self._appends_total += 1
        if self.faults is not None:
            action = self.faults.wal_action(append_index)
            if action is not None:
                kind, arg = action
                if kind == "tear":
                    keep = len(frame) // 2 if arg is None else min(arg, len(frame))
                    self._write_tail(frame[:keep])
                    raise CrashPoint(
                        f"injected crash tearing WAL append {append_index} "
                        f"at byte {keep}/{len(frame)}"
                    )
                if kind == "corrupt":
                    offset = (len(frame) // 2 if arg is None else arg) % len(frame)
                    frame = (
                        frame[:offset]
                        + bytes([frame[offset] ^ 0x40])
                        + frame[offset + 1 :]
                    )
        self._write_tail(frame)
        self._record_count += 1

    def _write_tail(self, data: bytes) -> None:
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(data)
        self._fh.flush()
        if self.sync and self.path is not None:
            os.fsync(self._fh.fileno())

    def replay(self, report: WalReplayReport | None = None) -> Iterator[WalRecord]:
        """Yield valid records in order, skipping and reporting damage.

        A torn tail ends the replay; a corrupt mid-log record is
        quarantined and replay resumes at the next CRC-valid frame. Pass a
        :class:`WalReplayReport` to collect the damage accounting.
        """
        rep = report if report is not None else WalReplayReport()
        buf = self.to_bytes()
        pos = 0
        total = len(buf)
        while pos < total:
            record, end, status = _parse_frame(buf, pos)
            if status == "ok":
                rep.records_ok += 1
                yield record
                pos = end
                continue
            if status == "short-header":
                rep.torn_tail_bytes = total - pos
                break
            if status == "short-payload":
                # Either a genuinely torn tail record, or a corrupt length
                # field pointing past EOF. If any complete valid frame
                # exists later, the length was corrupt; otherwise torn.
                nxt = _resync(buf, pos + 1)
                if nxt >= total:
                    rep.torn_tail_bytes = total - pos
                    break
                rep.records_quarantined += 1
                rep.bytes_quarantined += nxt - pos
                pos = nxt
                continue
            # bad-header / bad-crc: quarantine and resync.
            nxt = _resync(buf, pos + 1)
            rep.records_quarantined += 1
            rep.bytes_quarantined += nxt - pos
            pos = nxt

    def truncate(self) -> None:
        """Discard all records (called right after a snapshot lands)."""
        if self.path is None:
            self._fh = io.BytesIO()
        else:
            self._fh.truncate(0)
            self._fh.flush()
        self._record_count = 0

    @property
    def record_count(self) -> int:
        return self._record_count

    def size_bytes(self) -> int:
        self._fh.seek(0, os.SEEK_END)
        return self._fh.tell()

    def to_bytes(self) -> bytes:
        """Full raw log contents (replay input, crash-matrix state capture)."""
        self._fh.seek(0)
        return self._fh.read()

    def load_bytes(self, data: bytes) -> None:
        """Replace the log contents wholesale (simulated-restart helper)."""
        if self.path is None:
            self._fh = io.BytesIO(data)
        else:
            self._fh.truncate(0)
            self._fh.seek(0)
            self._fh.write(data)
            self._fh.flush()
        self._record_count = sum(1 for _ in self.replay())

    def close(self) -> None:
        if self.path is not None:
            self._fh.close()
