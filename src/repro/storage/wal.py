"""Write-ahead log for crash recovery (paper §4.4).

Update requests arriving between two snapshots are appended to the WAL;
recovery replays them on top of the latest snapshot. Records use a compact
binary framing so the log is append-only and replayable after partial
writes (a torn tail record is detected and discarded).
"""

from __future__ import annotations

import io
import os
import struct
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.util.errors import RecoveryError

_HEADER = struct.Struct("<BqI")  # op, vector id, payload byte length
OP_INSERT = 1
OP_DELETE = 2


@dataclass(frozen=True)
class WalRecord:
    """One logged update. ``vector`` is None for deletes."""

    op: int
    vector_id: int
    vector: np.ndarray | None

    @property
    def is_insert(self) -> bool:
        return self.op == OP_INSERT


class WriteAheadLog:
    """Append-only update log, file-backed or in-memory.

    Pass ``path=None`` for an in-memory log (fast tests); a string path gives
    a durable file that survives reopen — the crash-recovery tests reopen the
    same path to simulate a restart.
    """

    def __init__(self, path: str | None = None, sync: bool = False) -> None:
        self.path = path
        self.sync = sync
        self._record_count = 0
        if path is None:
            self._fh: io.BufferedRandom | io.BytesIO = io.BytesIO()
        else:
            # Append mode keeps existing records (restart after crash).
            self._fh = open(path, "a+b")
            self._record_count = sum(1 for _ in self.replay())

    def log_insert(self, vector_id: int, vector: np.ndarray) -> None:
        payload = np.ascontiguousarray(vector, dtype=np.float32).tobytes()
        self._append(OP_INSERT, vector_id, payload)

    def log_delete(self, vector_id: int) -> None:
        self._append(OP_DELETE, vector_id, b"")

    def _append(self, op: int, vector_id: int, payload: bytes) -> None:
        self._fh.seek(0, os.SEEK_END)
        self._fh.write(_HEADER.pack(op, vector_id, len(payload)))
        if payload:
            self._fh.write(payload)
        self._fh.flush()
        if self.sync and self.path is not None:
            os.fsync(self._fh.fileno())
        self._record_count += 1

    def replay(self) -> Iterator[WalRecord]:
        """Yield logged records in order; a torn tail record ends the replay."""
        self._fh.seek(0)
        while True:
            header = self._fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                break  # clean EOF or torn header: stop
            op, vector_id, nbytes = _HEADER.unpack(header)
            if op not in (OP_INSERT, OP_DELETE):
                raise RecoveryError(f"corrupt WAL record: unknown op {op}")
            payload = self._fh.read(nbytes)
            if len(payload) < nbytes:
                break  # torn payload: drop the partial record
            vector = None
            if op == OP_INSERT:
                vector = np.frombuffer(payload, dtype=np.float32).copy()
            yield WalRecord(op=op, vector_id=vector_id, vector=vector)

    def truncate(self) -> None:
        """Discard all records (called right after a snapshot lands)."""
        if self.path is None:
            self._fh = io.BytesIO()
        else:
            self._fh.truncate(0)
            self._fh.flush()
        self._record_count = 0

    @property
    def record_count(self) -> int:
        return self._record_count

    def size_bytes(self) -> int:
        self._fh.seek(0, os.SEEK_END)
        return self._fh.tell()

    def close(self) -> None:
        if self.path is not None:
            self._fh.close()
