"""Typed query surface shared by every search facade.

One request object — :class:`QueryRequest` — travels unchanged through
``SPFreshIndex``, ``ShardedSPFresh``, the MIPS wrapper, tracing, and the
serving frontend, so adding a knob (rerank width, quantized toggle,
tenant tag) is one field here instead of a signature change in six
places. Facades answer with a :class:`SearchResponse` that keeps the
per-query :class:`~repro.spann.searcher.SearchResult` objects and the
request that produced them.

The old positional signatures (``index.search(vector, k, nprobe)``)
still work for external callers but emit ``DeprecationWarning``; code
*inside* ``repro.*`` must build a ``QueryRequest`` — a legacy call from
an internal module raises ``TypeError`` so the deprecated surface cannot
quietly re-grow (tests enforce this; see ``docs/api.md``).
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field, replace

import numpy as np

__all__ = ["QueryRequest", "SearchResponse", "warn_legacy_query"]


def warn_legacy_query(api_name: str) -> None:
    """Flag one use of a deprecated positional search signature.

    External callers get a ``DeprecationWarning`` pointing at their call
    site. Callers inside the ``repro`` package raise ``TypeError``
    instead: first-party code has no migration window, and the hard
    failure is what keeps the deprecated surface from re-growing.
    """
    caller = sys._getframe(2).f_globals.get("__name__", "")
    if caller == "repro" or caller.startswith("repro."):
        raise TypeError(
            f"{api_name}: internal callers must pass a QueryRequest; the "
            f"positional (vector, k, nprobe) signature is deprecated "
            f"(docs/api.md)"
        )
    warnings.warn(
        f"{api_name}(vector, k, ...) is deprecated; pass a "
        f"repro.api.QueryRequest instead (docs/api.md)",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass(frozen=True)
class QueryRequest:
    """One search request: query vector(s) plus every tuning knob.

    ``vectors`` is normalized to a 2-D ``float32`` array at construction
    — a single 1-D vector becomes one row, so ``is_single`` tells the
    facade whether the caller wants one result or a batch. ``None``
    knobs mean "use the index's configured default": ``nprobe`` falls
    back to ``config.nprobe``, ``rerank_k``/``quantized`` to the
    searcher's quantization defaults (quantized scan iff the index was
    built with a quantized codec).
    """

    vectors: np.ndarray
    k: int = 10
    nprobe: int | None = None
    rerank_k: int | None = None
    quantized: bool | None = None
    tenant: int | None = None

    def __post_init__(self) -> None:
        vectors = np.asarray(self.vectors, dtype=np.float32)
        if vectors.ndim == 1:
            if len(vectors) == 0:
                raise ValueError(
                    "a 1-D QueryRequest vector cannot be empty; pass a "
                    "(0, dim) matrix for an explicitly empty batch"
                )
            vectors = vectors.reshape(1, -1)
        if vectors.ndim != 2:
            raise ValueError(
                f"vectors must be 1-D or 2-D, got shape {vectors.shape}"
            )
        # An explicitly 2-D empty batch is well-defined: every facade's
        # query() answers it with an empty SearchResponse (no shards or
        # postings probed). Only the single-vector form must be non-empty.
        object.__setattr__(self, "vectors", vectors)
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")
        if self.nprobe is not None and self.nprobe < 1:
            raise ValueError(f"nprobe must be at least 1, got {self.nprobe}")
        if self.rerank_k is not None and self.rerank_k < 1:
            raise ValueError(
                f"rerank_k must be at least 1, got {self.rerank_k}"
            )

    @classmethod
    def single(cls, vector: np.ndarray, k: int = 10, **knobs) -> "QueryRequest":
        """Request for one query vector (response exposes ``.ids`` etc.)."""
        vector = np.asarray(vector, dtype=np.float32)
        if vector.ndim != 1:
            raise ValueError(
                f"QueryRequest.single wants a 1-D vector, got {vector.shape}"
            )
        return cls(vectors=vector, k=k, **knobs)

    @property
    def is_single(self) -> bool:
        return len(self.vectors) == 1

    def with_vectors(self, vectors: np.ndarray) -> "QueryRequest":
        """Same knobs, different payload (batcher slicing, shard fanout)."""
        return replace(self, vectors=vectors)


@dataclass(frozen=True)
class SearchResponse:
    """Per-query results plus the request that produced them.

    Iterates/indexes like a sequence of
    :class:`~repro.spann.searcher.SearchResult`. For single-vector
    requests the result's fields are mirrored as properties
    (``response.ids``, ``response.latency_us``, ...) so the common case
    reads like the old API; accessing them on a batch response raises.
    """

    results: tuple = field(default_factory=tuple)
    request: QueryRequest | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "results", tuple(self.results))

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, item):
        return self.results[item]

    @property
    def result(self):
        """The sole SearchResult; raises on batch responses."""
        if len(self.results) != 1:
            raise ValueError(
                f"response holds {len(self.results)} results; index it or "
                f"iterate instead of using single-result accessors"
            )
        return self.results[0]

    # Single-result conveniences — the old API's return fields.
    @property
    def ids(self) -> np.ndarray:
        return self.result.ids

    @property
    def distances(self) -> np.ndarray:
        return self.result.distances

    @property
    def latency_us(self) -> float:
        return self.result.latency_us

    @property
    def io_latency_us(self) -> float:
        return self.result.io_latency_us

    @property
    def postings_probed(self) -> int:
        return self.result.postings_probed

    @property
    def entries_scanned(self) -> int:
        return self.result.entries_scanned

    @property
    def truncated(self) -> bool:
        return self.result.truncated

    @property
    def fresh_entries_scanned(self) -> int:
        return self.result.fresh_entries_scanned

    @property
    def reranked_entries(self) -> int:
        return self.result.reranked_entries
