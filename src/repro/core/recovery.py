"""Crash recovery: snapshot assembly and restore + WAL replay (paper §4.4).

A snapshot captures every in-memory structure: the centroid index, the
version map, the block mapping + free pool, and the posting-id allocator
cursor. Disk blocks referenced by the snapshot survive by construction —
the Block Controller defers releases between checkpoints — so restoring
the mapping makes the old posting contents readable again, and replaying
the WAL brings the index forward to the crash point.

Recovery is expected to run against *damaged* inputs: the WAL may hold a
torn tail or corrupt records (quarantined by
:meth:`~repro.storage.wal.WriteAheadLog.replay`), and individual replayed
updates may fail against the restored state. Neither aborts the restore;
everything skipped or discarded is tallied in a :class:`RecoveryReport`
attached to the index as ``index.last_recovery`` and mirrored into
``index.stats`` counters (``wal_records_replayed`` etc.). Only a missing
or integrity-failed snapshot — state that cannot be trusted at all —
raises :class:`~repro.util.errors.RecoveryError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.centroids import make_centroid_index
from repro.core.config import SPFreshConfig
from repro.core.ids import IdAllocator
from repro.core.version_map import VersionMap
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SimulatedSSD
from repro.storage.wal import WalReplayReport, WriteAheadLog
from repro.util.errors import CrashPoint, RecoveryError, ReproError, StorageError


@dataclass
class RecoveryReport:
    """What one snapshot+WAL recovery replayed, skipped, and discarded."""

    snapshot_generation: int = 0
    records_replayed: int = 0
    records_skipped: int = 0  # inserts the snapshot already contained live
    records_quarantined: int = 0  # CRC/framing failures skipped by replay
    records_failed: int = 0  # records that errored while being re-applied
    bytes_quarantined: int = 0
    torn_tail_bytes: int = 0
    # Replayed inserts still buffered in the fresh tier when recovery
    # finished (fresh-tier indexes only; the WAL is their durable record).
    records_in_fresh_tier: int = 0

    @property
    def clean(self) -> bool:
        """True when nothing was lost: no corruption, no tears, no errors."""
        return (
            self.records_quarantined == 0
            and self.records_failed == 0
            and self.torn_tail_bytes == 0
        )

    def summary(self) -> str:
        return (
            f"recovered from snapshot generation {self.snapshot_generation}: "
            f"{self.records_replayed} WAL records replayed, "
            f"{self.records_skipped} already in snapshot, "
            f"{self.records_quarantined} quarantined "
            f"({self.bytes_quarantined} bytes), "
            f"{self.records_failed} failed to apply, "
            f"{self.torn_tail_bytes} torn tail bytes, "
            f"{self.records_in_fresh_tier} resident in the fresh tier"
        )


def collect_state(index) -> dict:
    """Gather a serializable snapshot of an index's in-memory state."""
    state = {
        "config_dim": index.config.dim,
        "controller": index.controller.state_dict(),
        "centroids": index.centroid_index.state_dict(),
        "version_map": index.version_map.state_dict(),
        "next_posting_id": index.posting_ids.peek(),
    }
    quantizer = getattr(index, "quantizer", None)
    if quantizer is not None:
        # The fitted codebooks/ranges are part of the index: without them
        # the code sections on disk are unreadable and re-encoding after
        # restart would drift. ndarray state pickles through the snapshot
        # layer unchanged.
        state["quantizer"] = quantizer.state_dict()
    return state


def restore_index(
    index_cls,
    ssd: SimulatedSSD,
    config: SPFreshConfig,
    snapshots: SnapshotManager,
    wal: WriteAheadLog | None = None,
):
    """Rebuild an index object from snapshot + WAL on a surviving device."""
    from repro.quantize import quantizer_from_state
    from repro.storage.controller import BlockController
    from repro.storage.layout import PostingCodec, QuantizedPostingCodec

    state = snapshots.load()  # raises RecoveryError on integrity failure
    if state is None:
        raise RecoveryError("no snapshot available to recover from")
    if state["config_dim"] != config.dim:
        raise RecoveryError(
            f"snapshot dim {state['config_dim']} != config dim {config.dim}"
        )

    quantizer_state = state.get("quantizer")
    if config.quantize.enabled:
        if quantizer_state is None:
            raise RecoveryError(
                "config enables quantization but the snapshot carries no "
                "quantizer state"
            )
        try:
            quantizer = quantizer_from_state(quantizer_state)
        except (KeyError, TypeError, ValueError) as exc:
            raise RecoveryError(
                f"snapshot quantizer state is unusable: {exc}"
            ) from exc
        if quantizer.dim != config.dim:
            raise RecoveryError(
                f"snapshot quantizer dim {quantizer.dim} != config dim "
                f"{config.dim}"
            )
        codec = QuantizedPostingCodec(config.dim, config.block_size, quantizer)
    else:
        if quantizer_state is not None:
            raise RecoveryError(
                "snapshot was taken from a quantized index but the config "
                "disables quantization"
            )
        codec = PostingCodec(config.dim, config.block_size)
    controller = BlockController(ssd, codec)
    try:
        controller.load_state_dict(state["controller"])
    except (StorageError, KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(
            f"snapshot block mapping is inconsistent with the device: {exc}"
        ) from exc

    centroid_index = make_centroid_index(config.centroid_index_kind, config.dim)
    centroid_index.load_state_dict(state["centroids"])

    version_map = VersionMap()
    version_map.load_state_dict(state["version_map"])

    index = index_cls(
        config=config,
        ssd=ssd,
        controller=controller,
        centroid_index=centroid_index,
        version_map=version_map,
        posting_ids=IdAllocator(int(state["next_posting_id"])),
        wal=wal,
        snapshots=snapshots,
    )
    controller.begin_defer_release()  # recovery always has snapshots

    report = RecoveryReport(snapshot_generation=snapshots.generation)
    if wal is not None:
        _replay_wal(index, wal, report)
    index.last_recovery = report
    index.stats.incr("recoveries")
    index.stats.incr("wal_records_replayed", report.records_replayed)
    index.stats.incr("wal_records_skipped", report.records_skipped)
    index.stats.incr("wal_records_quarantined", report.records_quarantined)
    index.stats.incr("recovery_apply_errors", report.records_failed)
    return index


def _replay_wal(index, wal: WriteAheadLog, report: RecoveryReport) -> None:
    """Re-apply logged updates on top of the restored snapshot.

    Replay calls the normal Updater paths with logging disabled so a
    recovery does not re-log its own replay — on a fresh-tier index the
    replayed inserts therefore land back in the in-memory tier, exactly
    where they lived before the crash (docs/fresh-tier.md); this is how
    tier contents survive: the WAL is their only durable record. Inserts
    of ids the snapshot already saw live are skipped (they were logged
    before the snapshot landed but the snapshot includes them — possible
    because checkpoint flushes the tier, then truncates the WAL *after*
    persisting). Corrupt records are quarantined
    by the WAL itself; a record that fails while being re-applied is
    counted and skipped rather than aborting the whole recovery — one bad
    update must not take down every good one behind it.
    """
    wal_report = WalReplayReport()
    for record in list(wal.replay(report=wal_report)):
        try:
            if record.is_insert:
                if index.version_map.is_registered(
                    record.vector_id
                ) and not index.version_map.is_deleted(record.vector_id):
                    report.records_skipped += 1
                    continue
                index.updater.insert(record.vector_id, record.vector, log=False)
            else:
                index.updater.delete(record.vector_id, log=False)
            report.records_replayed += 1
        except CrashPoint:
            raise  # an injected crash mid-recovery is a real crash
        except (ReproError, ValueError):
            report.records_failed += 1
    index.drain()
    if index.fresh_tier is not None:
        report.records_in_fresh_tier = len(index.fresh_tier)
    report.records_quarantined = wal_report.records_quarantined
    report.bytes_quarantined = wal_report.bytes_quarantined
    report.torn_tail_bytes = wal_report.torn_tail_bytes
