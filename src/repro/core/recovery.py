"""Crash recovery: snapshot assembly and restore + WAL replay (paper §4.4).

A snapshot captures every in-memory structure: the centroid index, the
version map, the block mapping + free pool, and the posting-id allocator
cursor. Disk blocks referenced by the snapshot survive by construction —
the Block Controller defers releases between checkpoints — so restoring
the mapping makes the old posting contents readable again, and replaying
the WAL brings the index forward to the crash point.
"""

from __future__ import annotations

from repro.centroids import make_centroid_index
from repro.core.config import SPFreshConfig
from repro.core.ids import IdAllocator
from repro.core.version_map import VersionMap
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SimulatedSSD
from repro.storage.wal import WriteAheadLog
from repro.util.errors import RecoveryError


def collect_state(index) -> dict:
    """Gather a serializable snapshot of an index's in-memory state."""
    return {
        "config_dim": index.config.dim,
        "controller": index.controller.state_dict(),
        "centroids": index.centroid_index.state_dict(),
        "version_map": index.version_map.state_dict(),
        "next_posting_id": index.posting_ids.peek(),
    }


def restore_index(
    index_cls,
    ssd: SimulatedSSD,
    config: SPFreshConfig,
    snapshots: SnapshotManager,
    wal: WriteAheadLog | None = None,
):
    """Rebuild an index object from snapshot + WAL on a surviving device."""
    from repro.storage.controller import BlockController
    from repro.storage.layout import PostingCodec

    state = snapshots.load()
    if state is None:
        raise RecoveryError("no snapshot available to recover from")
    if state["config_dim"] != config.dim:
        raise RecoveryError(
            f"snapshot dim {state['config_dim']} != config dim {config.dim}"
        )

    codec = PostingCodec(config.dim, config.block_size)
    controller = BlockController(ssd, codec)
    controller.load_state_dict(state["controller"])

    centroid_index = make_centroid_index(config.centroid_index_kind, config.dim)
    centroid_index.load_state_dict(state["centroids"])

    version_map = VersionMap()
    version_map.load_state_dict(state["version_map"])

    index = index_cls(
        config=config,
        ssd=ssd,
        controller=controller,
        centroid_index=centroid_index,
        version_map=version_map,
        posting_ids=IdAllocator(int(state["next_posting_id"])),
        wal=wal,
        snapshots=snapshots,
    )
    controller.begin_defer_release()  # recovery always has snapshots

    if wal is not None:
        _replay_wal(index, wal)
    return index


def _replay_wal(index, wal: WriteAheadLog) -> None:
    """Re-apply logged updates on top of the restored snapshot.

    Replay calls the normal Updater paths with logging disabled so a
    recovery does not re-log its own replay. Inserts of ids the snapshot
    already saw live are skipped (they were logged before the snapshot
    landed but the snapshot includes them — possible because checkpoint
    truncates the WAL *after* persisting).
    """
    for record in list(wal.replay()):
        if record.is_insert:
            if index.version_map.is_registered(
                record.vector_id
            ) and not index.version_map.is_deleted(record.vector_id):
                continue
            index.updater.insert(record.vector_id, record.vector, log=False)
        else:
            index.updater.delete(record.vector_id, log=False)
    index.drain()
