"""Foreground in-place Updater (paper §4.1).

The Updater is the write front-end of the feed-forward pipeline: it
appends a new vector to the tail of its nearest posting(s), maintains the
version map for deletes, and hands oversized postings to the Local
Rebuilder as split jobs. It never splits, merges, or reassigns itself —
that work is off the critical path by design.
"""

from __future__ import annotations

import numpy as np

from repro.centroids.base import CentroidIndex
from repro.core.config import SPFreshConfig
from repro.core.fresh_tier import FreshTier
from repro.core.ids import IdAllocator
from repro.core.jobs import FlushJob, JobQueue, PostingLockManager, SplitJob
from repro.core.stats import LireStats
from repro.core.version_map import VersionMap
from repro.metrics.profiling import NULL_PROFILER, Profiler
from repro.spann.closure import select_replicas
from repro.storage.controller import BlockController
from repro.storage.layout import PostingData
from repro.storage.wal import WriteAheadLog
from repro.util.distance import as_vector
from repro.util.errors import IndexError_, StalePostingError


class Updater:
    """Serves Insert and Delete, producing split jobs for the rebuilder."""

    def __init__(
        self,
        centroid_index: CentroidIndex,
        controller: BlockController,
        version_map: VersionMap,
        locks: PostingLockManager,
        job_queue: JobQueue,
        stats: LireStats,
        config: SPFreshConfig,
        posting_ids: IdAllocator,
        wal: WriteAheadLog | None = None,
        profiler: Profiler | None = None,
        fresh_tier: FreshTier | None = None,
    ) -> None:
        self.centroid_index = centroid_index
        self.controller = controller
        self.version_map = version_map
        self.locks = locks
        self.job_queue = job_queue
        self.stats = stats
        self.config = config
        self.posting_ids = posting_ids
        self.wal = wal
        self.profiler = profiler or NULL_PROFILER
        self.fresh_tier = fresh_tier
        # Foreground ops since the current fresh-tier batch started
        # buffering; drives the age-based flush trigger.
        self._fresh_age_ops = 0

    # ------------------------------------------------------------------
    def insert(self, vector_id: int, vector: np.ndarray, log: bool = True) -> float:
        """Insert a vector; returns the simulated foreground latency (us).

        The vector is appended to its nearest posting (plus boundary
        replicas when ``insert_replicas > 1``). A posting deleted by a
        concurrent split triggers a re-route rather than a failure.

        With the fresh tier enabled the vector is buffered in memory
        instead (after WAL logging, so the ack stays durable) and reaches
        disk via the next batch flush (docs/fresh-tier.md).
        """
        if self.fresh_tier is not None:
            return self._insert_fresh(vector_id, vector, log)
        with self.profiler.section("update"):
            vector = as_vector(vector, self.config.dim)
            if log and self.wal is not None:
                self.wal.log_insert(vector_id, vector)
            version = self.version_map.register(vector_id)
            latency = self.config.cpu_cost_per_query_us  # centroid navigation
            entry = PostingData.from_rows([vector_id], [version], vector)

            for _ in range(1 + self.config.max_reassign_retries):
                targets = self._route(vector)
                if not targets:
                    latency += self._bootstrap_posting(vector, entry)
                    self.stats.incr("inserts")
                    return latency
                placed = 0
                for pid in targets:
                    try:
                        latency += self._append_to(pid, entry)
                        placed += 1
                    except StalePostingError:
                        self.stats.incr("reassign_posting_missing")
                if placed:
                    self.stats.incr("inserts")
                    self.stats.incr("appends", placed)
                    return latency
        # The vector was registered but never landed on disk. Tombstone it
        # before failing so the version map does not advertise a live id
        # with zero replicas (a conservation violation every audit and
        # future reassign would trip over).
        self.version_map.delete(vector_id)
        raise IndexError_(
            f"insert of vector {vector_id} kept racing with posting splits"
        )

    def _insert_fresh(self, vector_id: int, vector: np.ndarray, log: bool) -> float:
        """Buffer an insert in the fresh tier (WAL first: log *is* the ack)."""
        with self.profiler.section("update"):
            vector = as_vector(vector, self.config.dim)
            if log and self.wal is not None:
                self.wal.log_insert(vector_id, vector)
            version = self.version_map.register(vector_id)
            self.fresh_tier.add(vector_id, vector, version)
            self.stats.incr("inserts")
            self.stats.incr("fresh_inserts")
            if len(self.fresh_tier) == 1:
                # A new batch starts buffering: restart its age clock.
                self._fresh_age_ops = 0
            if len(self.fresh_tier) >= self.config.fresh_flush_threshold:
                self.job_queue.put(FlushJob())
                self._fresh_age_ops = 0
            else:
                self._age_fresh_tier()
            return self.config.fresh_insert_cpu_us

    def _age_fresh_tier(self) -> None:
        """Charge one foreground op against the buffered batch's age.

        With ``fresh_max_age_ops`` set, a batch that has been sitting
        through that many ops flushes even if it never reaches the size
        threshold — a trickle of inserts cannot stay buffered forever.
        """
        if self.fresh_tier is None or not len(self.fresh_tier):
            return
        self._fresh_age_ops += 1
        max_age = self.config.fresh_max_age_ops
        if max_age is not None and self._fresh_age_ops >= max_age:
            self.job_queue.put(FlushJob())
            self._fresh_age_ops = 0

    def delete(self, vector_id: int, log: bool = True) -> float:
        """Tombstone a vector; actual removal happens lazily during GC."""
        with self.profiler.section("update"):
            if log and self.wal is not None:
                self.wal.log_delete(vector_id)
            if self.version_map.delete(vector_id):
                self.stats.incr("deletes")
            # A buffered copy dies immediately: the tombstone already masks
            # any disk-resident duplicates of the same id.
            if self.fresh_tier is not None and self.fresh_tier.discard(vector_id):
                self.stats.incr("fresh_discards")
            # Deletes age any still-buffered batch toward its flush.
            self._age_fresh_tier()
            # Tombstones touch only the in-memory map: negligible latency.
            return 1.0

    # ------------------------------------------------------------------
    def _route(self, vector: np.ndarray) -> list[int]:
        """Nearest posting(s) for an insert, honoring the replica rule."""
        want = max(self.config.insert_replicas * 2, 4)
        hits = self.centroid_index.search(vector, want)
        if len(hits) == 0:
            return []
        if self.config.insert_replicas == 1:
            return [hits.nearest]
        return select_replicas(
            hits.posting_ids,
            hits.distances,
            self.config.insert_replicas,
            self.config.closure_epsilon,
        )

    def _append_to(self, posting_id: int, entry: PostingData) -> float:
        """Append under the posting write lock; maybe schedule a split."""
        with self.locks.hold(posting_id):
            if not self.controller.exists(posting_id):
                raise StalePostingError(f"posting {posting_id} vanished")
            latency = self.controller.append(posting_id, entry)
            length = self.controller.length(posting_id)
        if self.config.enable_split and length > self.config.max_posting_size:
            self.job_queue.put(SplitJob(posting_id=posting_id))
        return latency

    def _bootstrap_posting(self, vector: np.ndarray, entry: PostingData) -> float:
        """First insert into an empty index creates the first posting."""
        pid = self.posting_ids.next()
        latency = self.controller.create(pid, entry)
        self.centroid_index.add(pid, vector)
        return latency
