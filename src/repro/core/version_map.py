"""Global in-memory version map (paper §4.1, §4.2.1).

One byte per vector: seven bits of reassign version plus one deletion bit.
The map answers three questions cheaply:

* is this on-disk replica *stale* (its stored version != current)?
* is this vector deleted (tombstone)?
* can this reassign proceed (compare-and-swap on the version bits)?

Vector ids index a dense array that doubles on demand, mirroring the
paper's dense in-memory layout (1 byte/vector → ~1 GB per billion vectors).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.util.errors import IndexError_

VERSION_MASK = 0x7F  # low 7 bits: reassign version
DELETED_BIT = 0x80  # high bit: tombstone

_UNREGISTERED = np.uint8(0xFF)  # sentinel: id never registered
# 0xFF has the deleted bit set and version 0x7F; registration always writes
# a value with version < 0x7F semantics intact, so the sentinel is safe to
# distinguish "never seen" from "deleted".


class VersionMap:
    """Dense vector-id → version byte map with CAS semantics."""

    def __init__(self, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            initial_capacity = 1
        self._lock = threading.RLock()
        self._bytes = np.full(initial_capacity, _UNREGISTERED, dtype=np.uint8)
        self._registered = 0
        self._deleted = 0

    # ------------------------------------------------------------------
    # capacity / registration
    # ------------------------------------------------------------------
    def _ensure_capacity(self, vector_id: int) -> None:
        if vector_id < len(self._bytes):
            return
        new_cap = len(self._bytes)
        while new_cap <= vector_id:
            new_cap *= 2
        grown = np.full(new_cap, _UNREGISTERED, dtype=np.uint8)
        grown[: len(self._bytes)] = self._bytes
        self._bytes = grown

    def register(self, vector_id: int) -> int:
        """Register a new (or re-inserted) vector; returns its version (0).

        Re-registering a deleted id resurrects it with version 0, matching
        an insert of a fresh vector reusing the id.
        """
        if vector_id < 0:
            raise IndexError_("vector ids must be non-negative")
        with self._lock:
            self._ensure_capacity(vector_id)
            current = int(self._bytes[vector_id])
            if current == int(_UNREGISTERED):
                self._registered += 1
            elif not current & DELETED_BIT:
                raise IndexError_(f"vector {vector_id} is already live")
            else:
                self._deleted -= 1
            self._bytes[vector_id] = 0
            return 0

    def is_registered(self, vector_id: int) -> bool:
        with self._lock:
            return (
                0 <= vector_id < len(self._bytes)
                and self._bytes[vector_id] != _UNREGISTERED
            )

    # ------------------------------------------------------------------
    # tombstones
    # ------------------------------------------------------------------
    def delete(self, vector_id: int) -> bool:
        """Set the tombstone bit; returns False if already deleted/unknown."""
        with self._lock:
            if not self.is_registered(vector_id):
                return False
            current = int(self._bytes[vector_id])
            if current & DELETED_BIT:
                return False
            self._bytes[vector_id] = np.uint8(current | DELETED_BIT)
            self._deleted += 1
            return True

    def is_deleted(self, vector_id: int) -> bool:
        with self._lock:
            if not self.is_registered(vector_id):
                return True
            return bool(int(self._bytes[vector_id]) & DELETED_BIT)

    # ------------------------------------------------------------------
    # versions
    # ------------------------------------------------------------------
    def current_version(self, vector_id: int) -> int:
        """Current 7-bit version, or -1 for unknown/unregistered ids."""
        with self._lock:
            if not self.is_registered(vector_id):
                return -1
            return int(self._bytes[vector_id]) & VERSION_MASK

    def cas_bump(self, vector_id: int, expected_version: int) -> int | None:
        """Atomically bump the version if it still equals ``expected``.

        Returns the new version on success, None on conflict (another
        reassign won the race, or the vector was deleted). This is the CAS
        the Local Rebuilder uses to serialize concurrent reassigns (§4.2.2).
        """
        with self._lock:
            if not self.is_registered(vector_id):
                return None
            current = int(self._bytes[vector_id])
            if current & DELETED_BIT:
                return None
            if (current & VERSION_MASK) != expected_version:
                return None
            new_version = (expected_version + 1) & VERSION_MASK
            if new_version == VERSION_MASK:
                # Skip 0x7F: a deleted vector at that version would collide
                # with the 0xFF "unregistered" sentinel. Versions therefore
                # cycle through 127 values instead of 128.
                new_version = 0
            self._bytes[vector_id] = np.uint8(new_version)
            return new_version

    # ------------------------------------------------------------------
    # batch filtering (search / GC hot path)
    # ------------------------------------------------------------------
    def live_mask(self, ids: np.ndarray, versions: np.ndarray) -> np.ndarray:
        """Vectorized: which on-disk entries are live (fresh and undeleted)?

        ``ids``/``versions`` come straight from decoded posting data. An
        entry is live iff the id is registered, undeleted, and its stored
        version equals the current version.
        """
        ids = np.asarray(ids, dtype=np.int64)
        versions = np.asarray(versions, dtype=np.uint8)
        with self._lock:
            in_range = ids >= 0
            in_range &= ids < len(self._bytes)
            current = np.full(len(ids), int(_UNREGISTERED), dtype=np.uint8)
            current[in_range] = self._bytes[ids[in_range]]
            # Reuse one mask buffer with in-place ANDs: this runs once per
            # probed posting, so the saved temporaries add up at scan time.
            live = current != _UNREGISTERED
            live &= (current & DELETED_BIT) == 0
            live &= (current & VERSION_MASK) == (versions & VERSION_MASK)
            return live

    def live_ids(self) -> np.ndarray:
        """All registered, undeleted vector ids (ascending).

        Used by the invariant checker to cross-reference the map against
        on-disk postings; O(capacity) vectorized scan, so intended for
        audits rather than hot paths.
        """
        with self._lock:
            known = self._bytes != _UNREGISTERED
            undeleted = (self._bytes & DELETED_BIT) == 0
            return np.nonzero(known & undeleted)[0].astype(np.int64)

    # ------------------------------------------------------------------
    # accounting / snapshots
    # ------------------------------------------------------------------
    @property
    def live_count(self) -> int:
        with self._lock:
            return self._registered - self._deleted

    @property
    def deleted_count(self) -> int:
        with self._lock:
            return self._deleted

    def memory_bytes(self) -> int:
        with self._lock:
            return int(self._bytes.nbytes)

    def state_dict(self) -> dict:
        with self._lock:
            return {
                "bytes": self._bytes.copy(),
                "registered": self._registered,
                "deleted": self._deleted,
            }

    def load_state_dict(self, state: dict) -> None:
        with self._lock:
            self._bytes = np.asarray(state["bytes"], dtype=np.uint8).copy()
            self._registered = int(state["registered"])
            self._deleted = int(state["deleted"])
