"""SPFresh core: the LIRE protocol and the public index facade.

Module map (paper section in parentheses):

* :mod:`repro.core.config` — all tunables (§5.5 parameters included)
* :mod:`repro.core.version_map` — in-memory version map with CAS (§4.1/§4.2)
* :mod:`repro.core.conditions` — the two NPA necessary conditions (§3.3)
* :mod:`repro.core.jobs` — split/merge/reassign job types and queue (§4.2)
* :mod:`repro.core.updater` — foreground in-place Updater (§4.1)
* :mod:`repro.core.rebuilder` — background Local Rebuilder (§4.2)
* :mod:`repro.core.index` — :class:`SPFreshIndex`, the public API (§4)
* :mod:`repro.core.fresh_tier` — LSM-style in-memory write tier
* :mod:`repro.core.recovery` — snapshot + WAL crash recovery (§4.4)
"""

from repro.core.config import SPFreshConfig
from repro.core.fresh_tier import FreshTier
from repro.core.index import SPFreshIndex, SearchResult
from repro.core.stats import LireStats
from repro.core.version_map import VersionMap
from repro.core.maintenance import MaintenanceScanner, ScanReport
from repro.core.autotune import TuneResult, tune_nprobe

__all__ = [
    "FreshTier",
    "SPFreshConfig",
    "SPFreshIndex",
    "SearchResult",
    "LireStats",
    "VersionMap",
    "MaintenanceScanner",
    "ScanReport",
    "TuneResult",
    "tune_nprobe",
]
