"""Configuration for SPFresh and its SPANN substrate.

Defaults are tuned for reproduction scale (10^4-10^5 vectors, postings of
~100 entries) while keeping the same *ratios* the paper uses at billion
scale: postings an order of magnitude larger than the merge threshold, a
reassign range covering a local neighborhood of postings, and a handful of
boundary replicas per vector.

Subsystem knobs live in nested sub-configs (``config.serving``,
``config.fresh_tier``, ``config.quantize``, ``config.cluster``) so new
subsystems stop widening one flat namespace. Every historical flat knob
(``serve_*`` / ``fresh_*`` / ``enable_fresh_tier``, plus the ``quant_*``
family for quantization) keeps working as a read/write property alias and
as a constructor / ``with_overrides`` keyword — see docs/api.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.errors import ConfigError


@dataclass
class ServingConfig:
    """Serving front-end knobs (repro.serving, docs/serving.md)."""

    queue_capacity: int = 256  # bounded request queue depth
    max_batch: int = 32  # dynamic batcher size trigger
    max_wait_us: float = 1500.0  # dynamic batcher time trigger
    slo_us: float = 15_000.0  # end-to-end latency SLO
    # Admission sheds when the modelled queue wait exceeds this budget
    # (None disables wait-based shedding; the depth bound still applies).
    admission_wait_budget_us: float | None = 30_000.0
    # Concurrent engine workers on the simulated clock (K-worker pool;
    # 1 reproduces the historical serial-executor model bit-for-bit).
    num_workers: int = 1
    # Batch-seat scheduling across tenants: "fifo" (arrival order) or
    # "dwrr" (deficit-weighted round robin — a bursty tenant cannot
    # monopolize batch seats).
    fairness: str = "fifo"
    # Per-tenant DWRR weights, indexed by tenant id; tenants beyond the
    # sequence (or with weights None) get weight 1.0.
    tenant_weights: tuple | None = None
    # One tenant may occupy at most this fraction of the queue; arrivals
    # beyond it shed with reason "tenant_quota" (None disables).
    tenant_quota_fraction: float | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ServingConfig":
        if self.queue_capacity < 1:
            raise ConfigError("serve_queue_capacity must be at least 1")
        if self.max_batch < 1:
            raise ConfigError("serve_max_batch must be at least 1")
        if self.max_wait_us < 0:
            raise ConfigError("serve_max_wait_us must be non-negative")
        if self.slo_us <= 0:
            raise ConfigError("serve_slo_us must be positive")
        if (
            self.admission_wait_budget_us is not None
            and self.admission_wait_budget_us <= 0
        ):
            raise ConfigError(
                "serve_admission_wait_budget_us must be positive or None"
            )
        if self.num_workers < 1:
            raise ConfigError("serve_num_workers must be at least 1")
        if self.fairness not in ("fifo", "dwrr"):
            raise ConfigError(
                f"unknown serve_fairness {self.fairness!r} "
                f"(choose 'fifo' or 'dwrr')"
            )
        if self.tenant_weights is not None:
            weights = tuple(self.tenant_weights)
            if not weights or any(w <= 0 for w in weights):
                raise ConfigError(
                    "serve_tenant_weights must be a non-empty sequence of "
                    "positive weights (or None for equal shares)"
                )
            self.tenant_weights = weights
        if self.tenant_quota_fraction is not None and not (
            0.0 < self.tenant_quota_fraction <= 1.0
        ):
            raise ConfigError(
                "serve_tenant_quota_fraction must be in (0, 1] or None"
            )
        return self


@dataclass
class FreshTierConfig:
    """LSM-style memory tier for the write path (docs/fresh-tier.md).

    Inserts land in an in-memory tier searched alongside the disk index;
    a background flush batch-appends them to postings (one tail-block
    rewrite per posting per flush) and runs LIRE once per flush instead
    of once per insert. Off by default: the classic per-insert append
    path stays bit-identical to earlier revisions.
    """

    enabled: bool = False
    flush_threshold: int = 128  # buffered vectors that trigger a flush
    insert_cpu_us: float = 2.0  # modelled cost of a tier insert
    # Age-based flush trigger: flush when the oldest buffered insert has
    # been sitting for this many foreground ops (inserts + deletes),
    # even if the size threshold was never reached — so a trickle of
    # inserts cannot stay unflushed forever. None disables (size only).
    max_age_ops: int | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "FreshTierConfig":
        if self.flush_threshold < 1:
            raise ConfigError("fresh_flush_threshold must be at least 1")
        if self.insert_cpu_us < 0:
            raise ConfigError("fresh_insert_cpu_us must be non-negative")
        if self.max_age_ops is not None and self.max_age_ops < 1:
            raise ConfigError("fresh_max_age_ops must be >= 1 or None")
        return self


@dataclass
class ClusterConfig:
    """Cluster-scale sharding knobs (repro.distributed, docs/distributed.md).

    Governs :class:`~repro.distributed.ClusterSPFresh`: accuracy-preserving
    centroid-aware placement (queries probe only the ``nprobe`` shards whose
    centroid summaries can contribute), shard splits under growth, and
    replica groups with deterministic read fan-out. ``nprobe=None`` keeps
    the broadcast path — every shard answers, the exactness oracle the
    routed path is gated against.
    """

    # Shards probed per query; None = broadcast to every shard (oracle).
    nprobe: int | None = 2
    # Fine centroids per shard in the router's placement summary.
    centroids_per_shard: int = 8
    # Live vectors per shard that trigger a shard split; None disables.
    split_threshold: int | None = None
    # Replicas per shard group; reads pick one deterministically, writes
    # fan out to every live replica.
    replication_factor: int = 1
    # Wall-clock executor for parallel shard fan-out: "thread" reuses the
    # in-process pool, "process" escapes the GIL via worker processes.
    executor: str = "thread"
    # Modelled cost of ranking shard summaries per query (simulated clock).
    route_cost_us: float = 5.0

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "ClusterConfig":
        if self.nprobe is not None and self.nprobe < 1:
            raise ConfigError("cluster_nprobe must be positive or None")
        if self.centroids_per_shard < 1:
            raise ConfigError("cluster_centroids_per_shard must be at least 1")
        if self.split_threshold is not None and self.split_threshold < 2:
            raise ConfigError("cluster_split_threshold must be >= 2 or None")
        if self.replication_factor < 1:
            raise ConfigError("cluster_replication_factor must be at least 1")
        if self.executor not in ("thread", "process"):
            raise ConfigError(
                f"unknown cluster_executor {self.executor!r} "
                f"(choose 'thread' or 'process')"
            )
        if self.route_cost_us < 0:
            raise ConfigError("cluster_route_cost_us must be non-negative")
        return self


@dataclass
class QuantizeConfig:
    """Compressed posting scans (repro.quantize, docs/quantization.md).

    When enabled, postings store compact codes next to the exact vectors;
    searches scan the code section with a fused ADC kernel and rerank the
    best ``k * rerank_k`` candidates against the exact vectors. Off by
    default: the classic full-vector scan stays bit-identical.
    """

    enabled: bool = False
    kind: str = "pq"  # "pq" (product) or "sq8" (per-dim scalar)
    pq_subspaces: int = 8  # uint8 codes per vector when kind == "pq"
    pq_codebook_size: int = 256  # codewords per subspace (2..256)
    rerank_k: int = 4  # rerank the top k * rerank_k ADC candidates
    train_sample: int = 4096  # build-time codebook training sample
    train_iters: int = 8  # k-means iterations per subspace

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> "QuantizeConfig":
        if self.kind not in ("pq", "sq8"):
            raise ConfigError(f"unknown quantizer kind {self.kind!r}")
        if self.pq_subspaces < 1:
            raise ConfigError("quant_subspaces must be at least 1")
        if not 2 <= self.pq_codebook_size <= 256:
            raise ConfigError("quant_codebook_size must be in [2, 256]")
        if self.rerank_k < 1:
            raise ConfigError("quant_rerank_k must be at least 1")
        if self.train_sample < 1:
            raise ConfigError("quant_train_sample must be at least 1")
        if self.train_iters < 1:
            raise ConfigError("quant_train_iters must be at least 1")
        return self


# Flat back-compat aliases: historical knob name -> (sub-config, attribute).
_FLAT_ALIASES: dict[str, tuple[str, str]] = {
    "serve_queue_capacity": ("serving", "queue_capacity"),
    "serve_max_batch": ("serving", "max_batch"),
    "serve_max_wait_us": ("serving", "max_wait_us"),
    "serve_slo_us": ("serving", "slo_us"),
    "serve_admission_wait_budget_us": ("serving", "admission_wait_budget_us"),
    "serve_num_workers": ("serving", "num_workers"),
    "serve_fairness": ("serving", "fairness"),
    "serve_tenant_weights": ("serving", "tenant_weights"),
    "serve_tenant_quota_fraction": ("serving", "tenant_quota_fraction"),
    "enable_fresh_tier": ("fresh_tier", "enabled"),
    "fresh_flush_threshold": ("fresh_tier", "flush_threshold"),
    "fresh_insert_cpu_us": ("fresh_tier", "insert_cpu_us"),
    "fresh_max_age_ops": ("fresh_tier", "max_age_ops"),
    "quant_enabled": ("quantize", "enabled"),
    "quant_kind": ("quantize", "kind"),
    "quant_subspaces": ("quantize", "pq_subspaces"),
    "quant_codebook_size": ("quantize", "pq_codebook_size"),
    "quant_rerank_k": ("quantize", "rerank_k"),
    "quant_train_sample": ("quantize", "train_sample"),
    "quant_train_iters": ("quantize", "train_iters"),
    "cluster_nprobe": ("cluster", "nprobe"),
    "cluster_centroids_per_shard": ("cluster", "centroids_per_shard"),
    "cluster_split_threshold": ("cluster", "split_threshold"),
    "cluster_replication_factor": ("cluster", "replication_factor"),
    "cluster_executor": ("cluster", "executor"),
    "cluster_route_cost_us": ("cluster", "route_cost_us"),
}

_SECTIONS = ("serving", "fresh_tier", "quantize", "cluster")


@dataclass
class SPFreshConfig:
    """All SPFresh/SPANN tunables in one place.

    Feature flags (``enable_split`` / ``enable_merge`` / ``enable_reassign``)
    implement the Figure-10 ablation lattice: all off is SPANN+ (append
    only); split on is "+split"; split+reassign on is full SPFresh.
    """

    dim: int = 32

    # --- posting geometry (SPANN §3.1, LIRE §3.2) ---
    max_posting_size: int = 96  # split limit
    min_posting_size: int = 6  # merge threshold
    replica_count: int = 8  # boundary replicas per vector (SPANN uses 8)
    closure_epsilon: float = 0.3  # replica rule: d <= (1+eps) * d_nearest
    # SPANN also applies an RNG-style diversity rule; on clustered synthetic
    # data it suppresses nearly all replication (our centroids are dense),
    # so the build defaults to the pure distance-ratio rule, which lands at
    # the paper's measured replica statistics (~5.5 replicas, 86% multi).
    build_rng_rule: bool = False
    insert_replicas: int = 1  # paper: Updater appends to the nearest posting
    reassign_replicas: int = 8  # reassign re-applies the closure rule

    # --- LIRE behaviour (§3.3, §5.5) ---
    reassign_range: int = 16  # nearby postings checked after a split
    enable_split: bool = True
    enable_merge: bool = True
    enable_reassign: bool = True
    max_reassign_retries: int = 3  # posting-missing abort/re-execute bound

    # --- search (§5.1 metrics) ---
    default_nprobe: int = 8
    search_latency_budget_us: float | None = 10_000.0  # paper's 10ms hard cut
    # SPANN query-aware pruning: drop candidate postings farther than
    # (1+eps) x the nearest centroid distance. None = probe all nprobe.
    search_prune_epsilon: float | None = None
    cpu_cost_per_entry_us: float = 0.02  # modelled scan cost per entry
    cpu_cost_per_query_us: float = 30.0  # modelled centroid-navigation cost

    # --- storage (§4.3) ---
    block_size: int = 4096
    ssd_blocks: int = 1 << 17  # 128Ki blocks = 512 MiB simulated device
    read_latency_us: float = 90.0
    write_latency_us: float = 20.0
    queue_depth: int = 32

    # --- static build (SPANN) ---
    build_branch_factor: int = 8
    # Leaf size of the hierarchical clustering, *before* boundary
    # replication multiplies on-disk posting length by ~replica factor.
    build_target_posting_size: int = 16
    # Size-penalty weight for balanced clustering; 16 keeps even bimodal
    # postings splitting ~50/50 (the SPANN balance goal) without visibly
    # hurting centroid quality.
    balance_weight: float = 16.0
    kmeans_iters: int = 10

    # --- background pipeline (§4.2) ---
    background_workers: int = 2
    synchronous_rebuild: bool = True  # run LIRE jobs inline (deterministic)

    # --- subsystems (nested sub-configs; flat aliases still accepted) ---
    fresh_tier: FreshTierConfig = field(default_factory=FreshTierConfig)
    serving: ServingConfig = field(default_factory=ServingConfig)
    quantize: QuantizeConfig = field(default_factory=QuantizeConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)

    # --- misc ---
    # Wall-clock profiler (repro.metrics.profiling). Off by default: the
    # disabled cost is one attribute check per instrumented section.
    enable_profiling: bool = False
    centroid_index_kind: str = "brute"  # or "graph" / "bkt" (SPTAG stand-ins)
    seed: int = 0
    wal_path: str | None = None
    snapshot_dir: str | None = None
    extras: dict = field(default_factory=dict)

    def validate(self) -> "SPFreshConfig":
        """Raise :class:`ConfigError` on inconsistent settings; return self."""
        if self.dim <= 0:
            raise ConfigError("dim must be positive")
        if self.max_posting_size < 2:
            raise ConfigError("max_posting_size must be at least 2")
        if not 0 <= self.min_posting_size < self.max_posting_size:
            raise ConfigError(
                "min_posting_size must be in [0, max_posting_size)"
            )
        if self.replica_count < 1 or self.insert_replicas < 1:
            raise ConfigError("replica counts must be at least 1")
        if self.reassign_replicas < 1:
            raise ConfigError("reassign_replicas must be at least 1")
        if self.closure_epsilon < 0:
            raise ConfigError("closure_epsilon must be non-negative")
        if self.reassign_range < 0:
            raise ConfigError("reassign_range must be non-negative")
        if self.build_target_posting_size > self.max_posting_size:
            raise ConfigError(
                "build_target_posting_size must not exceed max_posting_size"
            )
        if self.default_nprobe < 1:
            raise ConfigError("default_nprobe must be at least 1")
        if self.background_workers < 1:
            raise ConfigError("background_workers must be at least 1")
        if self.centroid_index_kind not in ("brute", "graph", "bkt"):
            raise ConfigError(
                f"unknown centroid_index_kind {self.centroid_index_kind!r}"
            )
        if self.enable_reassign and not self.enable_split:
            raise ConfigError("enable_reassign requires enable_split")
        self.fresh_tier.validate()
        self.serving.validate()
        self.quantize.validate()
        self.cluster.validate()
        if (
            self.quantize.enabled
            and self.quantize.kind == "pq"
            and self.dim % self.quantize.pq_subspaces != 0
        ):
            raise ConfigError(
                f"dim {self.dim} must be divisible by quant_subspaces "
                f"{self.quantize.pq_subspaces}"
            )
        return self

    def with_overrides(self, **kwargs) -> "SPFreshConfig":
        """Functional update used heavily by the ablation benches.

        Accepts both nested fields (``serving=ServingConfig(...)``) and
        flat aliases (``serve_max_batch=4``). Nested sub-configs not
        explicitly replaced are deep-copied so the new config never
        shares mutable sub-config state with ``self``.
        """
        flat = {k: kwargs.pop(k) for k in list(kwargs) if k in _FLAT_ALIASES}
        for section in _SECTIONS:
            if section not in kwargs:
                kwargs[section] = replace(getattr(self, section))
        out = replace(self, **kwargs)
        for name, value in flat.items():
            setattr(out, name, value)
        return out.validate()

    @classmethod
    def spann_plus(cls, **kwargs) -> "SPFreshConfig":
        """Preset for the SPANN+ baseline: append-only, no Local Rebuilder."""
        base = dict(enable_split=False, enable_merge=False, enable_reassign=False)
        base.update(kwargs)
        return cls(**base).validate()


def _alias(section: str, attr: str) -> property:
    def getter(self):
        return getattr(getattr(self, section), attr)

    def setter(self, value) -> None:
        setattr(getattr(self, section), attr, value)

    return property(getter, setter)


for _name, (_section, _attr) in _FLAT_ALIASES.items():
    setattr(SPFreshConfig, _name, _alias(_section, _attr))
del _name, _section, _attr

# Accept flat aliases as constructor keywords too, so historical call
# sites like SPFreshConfig(enable_fresh_tier=True, serve_max_batch=4)
# keep working unchanged. Aliases are applied after the generated
# __init__, so they win over a simultaneously-passed sub-config.
_GENERATED_INIT = SPFreshConfig.__init__


def _init_with_aliases(self, *args, **kwargs) -> None:
    flat = {k: kwargs.pop(k) for k in list(kwargs) if k in _FLAT_ALIASES}
    _GENERATED_INIT(self, *args, **kwargs)
    for name, value in flat.items():
        setattr(self, name, value)


_init_with_aliases.__wrapped__ = _GENERATED_INIT
SPFreshConfig.__init__ = _init_with_aliases
