"""In-memory fresh tier: the LSM-style write buffer for recent vectors.

SPFresh's Updater pays a posting append — a read-modify-write of the tail
block — on *every* insert, which is exactly what an insert storm punishes.
LSM-VEC and FreshDiskANN (PAPERS.md) absorb fresh vectors into a small
in-memory tier instead: inserts land in RAM, queries scan the tier
alongside the disk index with an exact top-k merge, and a background flush
batch-appends the accumulated vectors to their postings so the tail-block
rewrite (and the LIRE rebalancing it triggers) is paid once per flush
rather than once per insert.

Durability does not live here: the WAL logs every insert *before* it
enters the tier, so acked tier contents replay from the WAL on recovery
(see ``repro.core.recovery``). The tier itself is just a dense matrix of
``(id, version, vector)`` rows with O(1) insert/discard (swap-with-last)
and brute-force scans through the same kernels the disk searcher uses —
``sq_l2_batch`` per query, ``pairwise_sq_l2_exact`` per batch — so merged
results are bit-identical to an index where the vectors had been flushed
eagerly (hypothesis-pinned in ``tests/test_fresh_tier.py``).
"""

from __future__ import annotations

import threading

import numpy as np

from repro.util.distance import as_vector

_MIN_CAPACITY = 16


class FreshTier:
    """Dense in-memory buffer of recently inserted vectors.

    Rows are stored in three parallel arrays (ids, versions, matrix) kept
    compact by swap-with-last removal, so the scan path always sees one
    contiguous float32 matrix. All mutators and snapshot readers hold the
    tier lock; searches operate on snapshot copies and never block writers.
    """

    def __init__(self, dim: int, version_map=None) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        self.dim = int(dim)
        self.version_map = version_map
        self._lock = threading.RLock()
        self._row_of: dict[int, int] = {}
        self._ids = np.empty(_MIN_CAPACITY, dtype=np.int64)
        self._versions = np.empty(_MIN_CAPACITY, dtype=np.uint8)
        self._matrix = np.empty((_MIN_CAPACITY, self.dim), dtype=np.float32)
        self._size = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def _grow_to(self, capacity: int) -> None:
        new_cap = max(_MIN_CAPACITY, len(self._ids))
        while new_cap < capacity:
            new_cap *= 2
        if new_cap == len(self._ids):
            return
        for name in ("_ids", "_versions", "_matrix"):
            old = getattr(self, name)
            shape = (new_cap,) + old.shape[1:]
            grown = np.empty(shape, dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def add(self, vector_id: int, vector: np.ndarray, version: int) -> None:
        """Buffer one vector (overwriting any previous row for the id)."""
        vector = as_vector(vector, self.dim)
        with self._lock:
            row = self._row_of.get(vector_id)
            if row is None:
                self._grow_to(self._size + 1)
                row = self._size
                self._size += 1
                self._row_of[vector_id] = row
                self._ids[row] = vector_id
            self._versions[row] = np.uint8(version)
            self._matrix[row] = vector

    def discard(self, vector_id: int) -> bool:
        """Drop the id's row if buffered; returns whether one existed."""
        with self._lock:
            row = self._row_of.pop(vector_id, None)
            if row is None:
                return False
            last = self._size - 1
            if row != last:
                moved = int(self._ids[last])
                self._ids[row] = self._ids[last]
                self._versions[row] = self._versions[last]
                self._matrix[row] = self._matrix[last]
                self._row_of[moved] = row
            self._size = last
            return True

    def clear(self) -> None:
        with self._lock:
            self._row_of.clear()
            self._size = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return self._size

    def __contains__(self, vector_id: int) -> bool:
        with self._lock:
            return vector_id in self._row_of

    def version_of(self, vector_id: int) -> int | None:
        with self._lock:
            row = self._row_of.get(vector_id)
            return None if row is None else int(self._versions[row])

    def memory_bytes(self) -> int:
        """Modelled DRAM footprint of the buffered rows (capacity-based)."""
        with self._lock:
            return int(
                self._ids.nbytes + self._versions.nbytes + self._matrix.nbytes
            )

    # ------------------------------------------------------------------
    # snapshots (search + flush + audit)
    # ------------------------------------------------------------------
    def entries(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of (ids, versions, matrix) for every buffered row."""
        with self._lock:
            n = self._size
            return (
                self._ids[:n].copy(),
                self._versions[:n].copy(),
                self._matrix[:n].copy(),
            )

    def live_snapshot(self) -> tuple[np.ndarray, np.ndarray]:
        """(ids, matrix) of rows that are still live per the version map.

        The tier discards rows on delete, so in the steady state every row
        is live; the mask only bites in the window between a concurrent
        delete's tombstone landing and its ``discard`` call.
        """
        ids, versions, matrix = self.entries()
        if self.version_map is None or len(ids) == 0:
            return ids, matrix
        mask = self.version_map.live_mask(ids, versions)
        if mask.all():
            return ids, matrix
        return ids[mask], matrix[mask]

    def take(
        self, max_vectors: int | None = None
    ) -> list[tuple[int, int, np.ndarray]]:
        """Snapshot up to ``max_vectors`` rows for a flush, in array order.

        Rows are *not* removed — the flush discards each id only after its
        copy has durably landed in a posting, so a crash mid-flush never
        loses a buffered vector (the WAL replays it either way).
        """
        ids, versions, matrix = self.entries()
        if max_vectors is not None:
            ids = ids[:max_vectors]
            versions = versions[:max_vectors]
            matrix = matrix[:max_vectors]
        return [
            (int(vid), int(ver), vec)
            for vid, ver, vec in zip(ids, versions, matrix)
        ]
