"""Monotonic id allocation for postings (and anything else that needs it)."""

from __future__ import annotations

import threading


class IdAllocator:
    """Thread-safe monotonically increasing integer allocator.

    Posting ids are never reused: a split deletes the old posting id and
    allocates two fresh ones, which is what makes concurrent readers able
    to detect "posting vanished" (StalePostingError) instead of silently
    reading unrelated data.
    """

    def __init__(self, start: int = 0) -> None:
        self._lock = threading.Lock()
        self._next = start

    def next(self) -> int:
        with self._lock:
            value = self._next
            self._next += 1
            return value

    def peek(self) -> int:
        with self._lock:
            return self._next

    def advance_to(self, value: int) -> None:
        """Ensure future allocations start at or beyond ``value``."""
        with self._lock:
            if value > self._next:
                self._next = value
