"""Service-level auto-tuning: pick nprobe for a recall target.

Operators of the paper's system choose nprobe (postings probed per query)
by hand to trade recall against latency (Figure 10's x-axis). This helper
automates the choice: given a validation query set with exact ground
truth, binary-search the smallest nprobe whose measured recall meets the
target. Recall is monotone (non-decreasing) in nprobe — more postings can
only add candidates — which is what makes the binary search sound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api import QueryRequest
from repro.metrics.recall import recall_at_k


@dataclass(frozen=True)
class TuneResult:
    """Outcome of an nprobe tuning run."""

    nprobe: int
    recall: float
    mean_latency_us: float
    target_met: bool
    evaluations: int


def _evaluate(index, queries, ground_truth, k, nprobe) -> tuple[float, float]:
    ids, latencies = [], []
    for query in queries:
        result = index.query(QueryRequest.single(query, k=k, nprobe=nprobe)).result
        ids.append(result.ids)
        latencies.append(result.latency_us)
    return recall_at_k(ids, ground_truth, k), float(np.mean(latencies))


def tune_nprobe(
    index,
    queries: np.ndarray,
    ground_truth: np.ndarray,
    k: int = 10,
    target_recall: float = 0.9,
    max_nprobe: int | None = None,
) -> TuneResult:
    """Smallest nprobe whose validation recall reaches ``target_recall``.

    If even ``max_nprobe`` misses the target, the result reports the best
    achievable configuration with ``target_met=False`` rather than
    raising — the operator decides whether to accept or re-index.
    """
    if not 0.0 < target_recall <= 1.0:
        raise ValueError("target_recall must be in (0, 1]")
    if len(queries) == 0:
        raise ValueError("need at least one validation query")
    ceiling = max_nprobe or max(index.num_postings, 1)
    evaluations = 0

    # Establish the feasible ceiling first.
    recall_hi, latency_hi = _evaluate(index, queries, ground_truth, k, ceiling)
    evaluations += 1
    if recall_hi < target_recall:
        return TuneResult(
            nprobe=ceiling,
            recall=recall_hi,
            mean_latency_us=latency_hi,
            target_met=False,
            evaluations=evaluations,
        )

    lo, hi = 1, ceiling
    best = (ceiling, recall_hi, latency_hi)
    while lo < hi:
        mid = (lo + hi) // 2
        recall, latency = _evaluate(index, queries, ground_truth, k, mid)
        evaluations += 1
        if recall >= target_recall:
            best = (mid, recall, latency)
            hi = mid
        else:
            lo = mid + 1
    return TuneResult(
        nprobe=best[0],
        recall=best[1],
        mean_latency_us=best[2],
        target_met=True,
        evaluations=evaluations,
    )
