"""Background Local Rebuilder: split, merge, reassign (paper §4.2).

The rebuilder consumes jobs from the shared queue and executes the three
internal LIRE operators with posting-level locking and version-map CAS:

* **split** — GC the oversized posting; if still oversized, run balanced
  2-means, install the two new postings + centroids, drop the old one, and
  collect reassign candidates via the two necessary conditions (§3.3);
* **merge** — fold an undersized posting into its nearest neighbor and
  reassign the moved vectors (no neighbor-range check needed, §4.2.1);
* **reassign** — re-validate one vector's assignment: search its true
  nearest posting, discard false positives (NPA check), CAS-bump its
  version, and append the fresh copy; all stale replicas die by version.

Jobs can run inline (synchronous mode, deterministic — the default for
tests) or on background worker threads (the paper's two-stage pipeline).
"""

from __future__ import annotations

import queue
import threading

import numpy as np

from repro.centroids.base import CentroidIndex
from repro.clustering.balanced import split_in_two
from repro.core.conditions import condition_one_mask, condition_two_mask
from repro.core.config import SPFreshConfig
from repro.core.fresh_tier import FreshTier
from repro.core.ids import IdAllocator
from repro.core.jobs import (
    FlushJob,
    JobQueue,
    MergeJob,
    PostingLockManager,
    ReassignJob,
    SplitJob,
)
from repro.core.stats import LireStats
from repro.core.version_map import VersionMap
from repro.metrics.profiling import NULL_PROFILER, Profiler
from repro.spann.closure import select_replicas
from repro.spann.postings import live_view
from repro.storage.controller import BlockController
from repro.storage.layout import PostingData
from repro.util.errors import IndexError_, StalePostingError


class LocalRebuilder:
    """Executes LIRE's internal operators off the update critical path."""

    def __init__(
        self,
        centroid_index: CentroidIndex,
        controller: BlockController,
        version_map: VersionMap,
        locks: PostingLockManager,
        job_queue: JobQueue,
        stats: LireStats,
        config: SPFreshConfig,
        posting_ids: IdAllocator,
        rng: np.random.Generator | None = None,
        profiler: Profiler | None = None,
        fresh_tier: FreshTier | None = None,
    ) -> None:
        self.profiler = profiler or NULL_PROFILER
        self.centroid_index = centroid_index
        self.controller = controller
        self.version_map = version_map
        self.locks = locks
        self.job_queue = job_queue
        self.stats = stats
        self.config = config
        self.posting_ids = posting_ids
        self.rng = rng or np.random.default_rng(config.seed + 1)
        self.fresh_tier = fresh_tier
        self.background_io_us = 0.0  # simulated device time spent by rebuilds
        self.io_by_job = {
            "split": 0.0,
            "merge": 0.0,
            "reassign": 0.0,
            "flush": 0.0,
            "other": 0.0,
        }
        self._current_job_kind = "other"
        self._workers: list[threading.Thread] = []
        self._stop = threading.Event()
        # Exceptions that escaped a background job. A worker that died on
        # an unhandled error would silently shrink pipeline capacity, so
        # the loop records the failure and keeps serving the queue; the
        # stress harness asserts this list stays empty.
        self.worker_errors: list[BaseException] = []

    # ------------------------------------------------------------------
    # job dispatch
    # ------------------------------------------------------------------
    def process(self, job: object) -> None:
        with self.profiler.section("maintenance"):
            before = self.background_io_us
            if isinstance(job, SplitJob):
                self._current_job_kind = "split"
                self._run_split(job)
            elif isinstance(job, MergeJob):
                self._current_job_kind = "merge"
                self._run_merge(job)
            elif isinstance(job, ReassignJob):
                self._current_job_kind = "reassign"
                self._run_reassign(job)
            elif isinstance(job, FlushJob):
                self._current_job_kind = "flush"
                self._run_flush(job)
            else:
                raise IndexError_(f"unknown rebuild job type: {type(job).__name__}")
            self.io_by_job[self._current_job_kind] += self.background_io_us - before
            self._current_job_kind = "other"

    def drain(self, max_jobs: int | None = None) -> int:
        """Synchronously run queued jobs (and their cascades) to exhaustion.

        Returns the number of jobs executed. ``max_jobs`` bounds runaway
        cascades in adversarial tests; normal operation always converges
        (paper §3.4) because every split grows the centroid set by one.
        """
        executed = 0
        while max_jobs is None or executed < max_jobs:
            try:
                job = self.job_queue.get()
            except queue.Empty:
                break
            try:
                self.process(job)
            finally:
                self.job_queue.task_done()
            executed += 1
        return executed

    # ------------------------------------------------------------------
    # background workers
    # ------------------------------------------------------------------
    def start(self, num_workers: int | None = None) -> None:
        """Spawn background worker threads (paper's pipeline stage two)."""
        if self._workers:
            return
        self._stop.clear()
        count = num_workers or self.config.background_workers
        for i in range(count):
            worker = threading.Thread(
                target=self._worker_loop, name=f"local-rebuilder-{i}", daemon=True
            )
            worker.start()
            self._workers.append(worker)

    def stop(self) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join()
        self._workers.clear()

    def wait_idle(self) -> None:
        """Block until every queued job (and cascades) has completed."""
        self.job_queue.join()

    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self.job_queue.get(timeout=0.02, block=True)
            except queue.Empty:
                continue
            try:
                self.process(job)
            except Exception as exc:  # noqa: BLE001 — keep the worker alive
                self.worker_errors.append(exc)
                self.stats.incr("worker_errors")
            finally:
                self.job_queue.task_done()

    # ------------------------------------------------------------------
    # split
    # ------------------------------------------------------------------
    def _run_split(self, job: SplitJob) -> None:
        pid = job.posting_id
        self.stats.incr("split_jobs")
        reassign_context = None
        with self.locks.hold(pid):
            if not self.controller.exists(pid) or pid not in self.centroid_index:
                return  # raced with another split/merge; nothing to do
            data, io_us = self.controller.get(pid)
            self.background_io_us += io_us
            live = live_view(data, self.version_map)
            if len(live) <= self.config.max_posting_size:
                # Garbage collection alone fixed the length (paper §4.2.1).
                if len(live) < len(data):
                    self.background_io_us += self.controller.put(pid, live)
                    self.stats.incr("gc_writebacks")
                return
            old_centroid = self.centroid_index.get(pid)
            new_centroids, assignments = split_in_two(
                live.vectors,
                self.rng,
                balance_weight=self.config.balance_weight,
            )
            parts = [live.select(assignments == j) for j in (0, 1)]
            new_pids = [self.posting_ids.next(), self.posting_ids.next()]
            for new_pid, part in zip(new_pids, parts):
                self.background_io_us += self.controller.create(new_pid, part)
            for new_pid, centroid in zip(new_pids, new_centroids):
                self.centroid_index.add(new_pid, centroid)
            self.centroid_index.remove(pid)
            self.controller.delete(pid)
            reassign_context = (old_centroid, new_centroids, new_pids, parts)
        self.locks.forget(pid)
        self.stats.incr("splits")
        self.stats.observe_cascade_depth(job.cascade_depth + 1)
        if reassign_context is not None:
            # A GC'd posting can still be far over the limit (bulk appends
            # before the job ran, or a replica-heavy build); halves that
            # remain oversized cascade into further splits.
            _, _, new_pids, parts = reassign_context
            for new_pid, part in zip(new_pids, parts):
                if len(part) > self.config.max_posting_size:
                    self.job_queue.put(
                        SplitJob(
                            posting_id=new_pid,
                            cascade_depth=job.cascade_depth + 1,
                        )
                    )
        if self.config.enable_reassign and reassign_context is not None:
            self._collect_split_reassigns(*reassign_context, job.cascade_depth)

    def _collect_split_reassigns(
        self,
        old_centroid: np.ndarray,
        new_centroids: np.ndarray,
        new_pids: list[int],
        parts: list[PostingData],
        cascade_depth: int,
    ) -> None:
        """Apply the two necessary conditions to find reassign candidates."""
        # Condition 1: vectors inside the split postings (Eq. 1).
        for new_pid, part in zip(new_pids, parts):
            if len(part) == 0:
                continue
            self.stats.incr("reassign_evaluated", len(part))
            mask = condition_one_mask(part.vectors, old_centroid, new_centroids)
            self._schedule_reassigns(part, mask, new_pid)
        # Condition 2: vectors in nearby postings (Eq. 2).
        if self.config.reassign_range <= 0:
            return
        hits = self.centroid_index.search(
            old_centroid, self.config.reassign_range + len(new_pids)
        )
        neighbor_pids = [
            int(p) for p in hits.posting_ids if int(p) not in new_pids
        ][: self.config.reassign_range]
        if not neighbor_pids:
            return
        postings, io_us = self.controller.parallel_get(neighbor_pids)
        self.background_io_us += io_us
        for neighbor_pid, data in postings.items():
            live = live_view(data, self.version_map)
            if len(live) == 0:
                continue
            self.stats.incr("reassign_evaluated", len(live))
            mask = condition_two_mask(live.vectors, old_centroid, new_centroids)
            self._schedule_reassigns(live, mask, neighbor_pid)

    def _schedule_reassigns(
        self, data: PostingData, mask: np.ndarray, source_posting: int
    ) -> None:
        for row in np.nonzero(mask)[0]:
            vid = int(data.ids[row])
            version = self.version_map.current_version(vid)
            if version < 0 or self.version_map.is_deleted(vid):
                continue
            if version != int(data.versions[row]):
                continue  # stale replica; the live copy is elsewhere
            self.stats.incr("reassign_scheduled")
            self.job_queue.put(
                ReassignJob(
                    vector_id=vid,
                    vector=data.vectors[row].copy(),
                    expected_version=version,
                    source_posting=source_posting,
                )
            )

    # ------------------------------------------------------------------
    # merge
    # ------------------------------------------------------------------
    def _run_merge(self, job: MergeJob) -> None:
        pid = job.posting_id
        self.stats.incr("merge_jobs")
        target = self._pick_merge_target(pid)
        if target is None:
            return
        moved: PostingData | None = None
        with self.locks.hold(pid, target):
            if not (self.controller.exists(pid) and self.controller.exists(target)):
                return
            if pid not in self.centroid_index or target not in self.centroid_index:
                return
            data, io_us = self.controller.get(pid)
            self.background_io_us += io_us
            live = live_view(data, self.version_map)
            if len(live) >= self.config.min_posting_size:
                return  # grew back; merge no longer needed
            if len(live) > 0:
                self.background_io_us += self.controller.append(target, live)
            self.controller.delete(pid)
            self.centroid_index.remove(pid)
            moved = live
            target_len = self.controller.length(target)
        self.locks.forget(pid)
        self.stats.incr("merges")
        if self.config.enable_split and target_len > self.config.max_posting_size:
            self.job_queue.put(SplitJob(posting_id=target))
        if self.config.enable_reassign and moved is not None and len(moved) > 0:
            # The deleted centroid may break NPA for the moved vectors only
            # (paper §3.3: merged postings need no neighbor check).
            self.stats.incr("reassign_evaluated", len(moved))
            mask = np.ones(len(moved), dtype=bool)
            self._schedule_reassigns(moved, mask, target)

    def _pick_merge_target(self, pid: int) -> int | None:
        """Nearest other posting, by centroid distance."""
        if pid not in self.centroid_index:
            return None
        try:
            centroid = self.centroid_index.get(pid)
        except IndexError_:
            return None
        hits = self.centroid_index.search(centroid, 4)
        for candidate in hits.posting_ids:
            if int(candidate) != pid:
                return int(candidate)
        return None

    # ------------------------------------------------------------------
    # reassign
    # ------------------------------------------------------------------
    def _run_reassign(self, job: ReassignJob) -> None:
        vid = job.vector_id
        if (
            self.version_map.is_deleted(vid)
            or self.version_map.current_version(vid) != job.expected_version
        ):
            self.stats.incr("reassign_aborted_version")
            return
        hits = self.centroid_index.search(
            job.vector, max(self.config.reassign_replicas * 2, 4)
        )
        if len(hits) == 0:
            return
        if hits.nearest == job.source_posting:
            # False positive: the vector already sits in its nearest posting.
            self.stats.incr("reassign_aborted_npa")
            return
        # Re-apply the build's closure rule (pure distance ratio — see
        # SPFreshConfig.build_rng_rule) so a reassigned vector keeps the
        # same boundary-replica structure it had before the move.
        targets = select_replicas(
            hits.posting_ids,
            hits.distances,
            self.config.reassign_replicas,
            self.config.closure_epsilon,
        )
        new_version = self.version_map.cas_bump(vid, job.expected_version)
        if new_version is None:
            self.stats.incr("reassign_aborted_version")
            return
        entry_versions = [new_version]
        placed = self._append_entry(vid, entry_versions[0], job.vector, targets)
        if not placed:
            # Every target vanished mid-flight (posting-missing): re-route
            # with a fresh centroid search until a copy lands.
            for _ in range(self.config.max_reassign_retries):
                self.stats.incr("reassign_posting_missing")
                hits = self.centroid_index.search(job.vector, 4)
                if len(hits) == 0:
                    break
                placed = self._append_entry(
                    vid, entry_versions[0], job.vector, [hits.nearest]
                )
                if placed:
                    break
        if not placed:
            raise IndexError_(
                f"reassign of vector {vid} could not place a copy anywhere"
            )
        self.stats.incr("reassign_executed")

    # ------------------------------------------------------------------
    # flush (fresh tier → postings, docs/fresh-tier.md)
    # ------------------------------------------------------------------
    def _run_flush(self, job: FlushJob) -> None:
        """Batch-append buffered fresh-tier vectors to their postings.

        The batch is grouped by target posting so each posting pays ONE
        tail-block read-modify-write per flush regardless of how many
        vectors land in it — the write-amplification win over per-insert
        appends. Oversized postings schedule splits (and through them
        reassigns) once per flush, which is LIRE's once-per-batch cadence.
        A tier row is discarded only after its copy durably landed; a crash
        mid-flush therefore loses nothing (the WAL replays the tier).
        """
        tier = self.fresh_tier
        if tier is None:
            return
        self.stats.incr("fresh_flush_jobs")
        batch = tier.take(job.max_vectors)
        placed: set[int] = set()
        flushed = 0
        pending: dict[int, list[tuple[int, int, np.ndarray]]] = {}
        for vid, version, vector in batch:
            # Deleted (or concurrently re-versioned) rows never reach disk.
            if (
                self.version_map.is_deleted(vid)
                or self.version_map.current_version(vid) != version
            ):
                tier.discard(vid)
                continue
            targets = self._route_fresh(vector)
            if not targets:
                # Flush into an empty index bootstraps the first posting,
                # exactly like the Updater's first insert.
                pid = self.posting_ids.next()
                entry = PostingData.from_rows([vid], [version], vector)
                self.background_io_us += self.controller.create(pid, entry)
                self.centroid_index.add(pid, vector)
                self.stats.incr("appends")
                self.stats.incr("fresh_flush_appends")
                placed.add(vid)
                flushed += 1
                tier.discard(vid)
                continue
            for pid in targets:
                pending.setdefault(pid, []).append((vid, version, vector))
        for pid in sorted(pending):
            rows = pending[pid]
            data = PostingData.from_rows(
                [r[0] for r in rows],
                [r[1] for r in rows],
                np.stack([r[2] for r in rows]),
            )
            try:
                with self.locks.hold(pid):
                    if not self.controller.exists(pid):
                        raise StalePostingError(f"posting {pid} vanished")
                    self.background_io_us += self.controller.append(pid, data)
                    length = self.controller.length(pid)
            except StalePostingError:
                self.stats.incr("reassign_posting_missing")
                continue  # every row of this group retries individually below
            self.stats.incr("appends", len(rows))
            self.stats.incr("fresh_flush_appends")
            for vid, _, _ in rows:
                if vid not in placed:
                    placed.add(vid)
                    flushed += 1
                tier.discard(vid)
            if self.config.enable_split and length > self.config.max_posting_size:
                self.job_queue.put(SplitJob(posting_id=pid))
        for vid, version, vector in batch:
            # Rows whose every target posting vanished mid-flush re-route
            # one by one with the Updater's retry discipline.
            if (
                vid in placed
                or self.version_map.is_deleted(vid)
                or self.version_map.current_version(vid) != version
            ):
                continue
            for _ in range(1 + self.config.max_reassign_retries):
                hits = self.centroid_index.search(vector, 4)
                if len(hits) == 0:
                    break
                if self._append_entry(vid, version, vector, [int(hits.nearest)]):
                    self.stats.incr("appends")
                    self.stats.incr("fresh_flush_appends")
                    placed.add(vid)
                    flushed += 1
                    tier.discard(vid)
                    break
            if vid not in placed:
                raise IndexError_(
                    f"flush of vector {vid} kept racing with posting splits"
                )
        if flushed:
            self.stats.incr("fresh_flushes")
            self.stats.incr("fresh_flushed_vectors", flushed)

    def _route_fresh(self, vector: np.ndarray) -> list[int]:
        """Target posting(s) for a flushed vector (Updater's insert rule)."""
        want = max(self.config.insert_replicas * 2, 4)
        hits = self.centroid_index.search(vector, want)
        if len(hits) == 0:
            return []
        if self.config.insert_replicas == 1:
            return [int(hits.nearest)]
        return select_replicas(
            hits.posting_ids,
            hits.distances,
            self.config.insert_replicas,
            self.config.closure_epsilon,
        )

    def _centroid_or_none(self, pid: int):
        try:
            return self.centroid_index.get(pid)
        except IndexError_:
            return None

    def _append_entry(
        self, vid: int, version: int, vector: np.ndarray, targets: list[int]
    ) -> bool:
        """Append one entry to each target posting; True if any append landed."""
        entry = PostingData.from_rows([vid], [version], vector)
        placed = False
        for pid in targets:
            try:
                with self.locks.hold(pid):
                    if not self.controller.exists(pid):
                        raise StalePostingError(f"posting {pid} vanished")
                    self.background_io_us += self.controller.append(pid, entry)
                    length = self.controller.length(pid)
                placed = True
            except StalePostingError:
                self.stats.incr("reassign_posting_missing")
                continue
            if self.config.enable_split and length > self.config.max_posting_size:
                self.job_queue.put(SplitJob(posting_id=pid, cascade_depth=1))
        return placed
