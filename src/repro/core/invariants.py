"""Whole-index invariant checker for the LIRE pipeline.

The concurrent split/merge/reassign pipeline is only trustworthy if its
end state can be audited. :func:`check_invariants` sweeps the index once
and verifies the properties the paper's protocol promises after the job
queue drains:

* **conservation** — every live vector id in the version map has at least
  one on-disk replica stored at its *current* version (nothing lost, no
  ghosts in the map); with the fresh tier enabled, a current-version row
  buffered in the tier counts as that replica — vectors in flight between
  tier and postings (mid-flush) may legitimately appear in both places,
  but must appear in at least one;
* **tier hygiene** — the fresh tier holds no deleted or version-stale
  rows (deletes discard eagerly; flushes drop stale rows);
* **size bounds** — no posting exceeds ``max_posting_size`` (splits kept
  up with appends; only checked when splits are enabled and the queue is
  drained);
* **mapping coherence** — the Block Controller's posting table and the
  centroid index hold exactly the same posting ids (a split or merge that
  died halfway leaves an orphan on one side);
* **code coherence** — on quantized indexes, every posting's stored code
  column equals re-encoding its stored vectors (splits, merges, flushes,
  and GC all kept the compact codes fresh; encoding is deterministic so
  the comparison is exact);
* **sampled NPA** — for a random sample of live vectors, the posting of
  the nearest centroid contains a live copy (the nearest-partition
  assignment property, §3.3; boundary ties are tolerated).

The checker is read-only and takes no locks beyond the controller's own,
so it can run against a quiesced index (after ``stop()``/``drain()``) or,
best-effort, against a live one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spann.postings import live_view
from repro.util.distance import sq_l2
from repro.util.errors import IndexError_, StalePostingError


class InvariantViolation(IndexError_):
    """check_invariants found a broken index-wide invariant."""


@dataclass
class InvariantReport:
    """Outcome of one :func:`check_invariants` sweep."""

    live_vectors: int = 0
    postings: int = 0
    lost_vectors: list[int] = field(default_factory=list)
    oversized_postings: list[tuple[int, int]] = field(default_factory=list)
    postings_without_centroid: list[int] = field(default_factory=list)
    centroids_without_posting: list[int] = field(default_factory=list)
    npa_checked: int = 0
    npa_violations: list[int] = field(default_factory=list)
    npa_allowance: int = 0
    fresh_tier_vectors: int = 0  # live rows buffered in the fresh tier
    stale_tier_entries: list[int] = field(default_factory=list)
    # Quantized indexes: postings whose stored code column differs from
    # re-encoding the stored vectors — (posting id, mismatching rows).
    # Encoding is deterministic, so any mismatch means a rewrite path
    # dropped code/vector coherence (docs/quantization.md).
    code_mismatches: list[tuple[int, int]] = field(default_factory=list)

    @property
    def failures(self) -> list[str]:
        """Human-readable description of every violated invariant."""
        out: list[str] = []
        if self.lost_vectors:
            out.append(
                f"{len(self.lost_vectors)} live vectors have no live replica "
                f"(e.g. {self.lost_vectors[:5]})"
            )
        if self.oversized_postings:
            out.append(
                f"{len(self.oversized_postings)} postings over the split "
                f"limit (e.g. {self.oversized_postings[:5]})"
            )
        if self.postings_without_centroid:
            out.append(
                f"postings without centroid: {self.postings_without_centroid[:5]}"
            )
        if self.centroids_without_posting:
            out.append(
                f"centroids without posting: {self.centroids_without_posting[:5]}"
            )
        if self.stale_tier_entries:
            out.append(
                f"{len(self.stale_tier_entries)} deleted/stale rows still "
                f"buffered in the fresh tier (e.g. {self.stale_tier_entries[:5]})"
            )
        if self.code_mismatches:
            out.append(
                f"{len(self.code_mismatches)} postings whose quantized codes "
                f"disagree with re-encoding their vectors "
                f"(e.g. {self.code_mismatches[:5]})"
            )
        if len(self.npa_violations) > self.npa_allowance:
            out.append(
                f"{len(self.npa_violations)}/{self.npa_checked} sampled "
                f"vectors violate NPA (allowance {self.npa_allowance}, "
                f"e.g. {self.npa_violations[:5]})"
            )
        return out

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise InvariantViolation("; ".join(self.failures))


def check_invariants(
    index,
    *,
    npa_sample: int = 128,
    npa_tolerance: float = 1e-5,
    npa_allowance: int | None = None,
    check_size_bounds: bool = True,
    size_slack: int = 0,
    seed: int = 0,
) -> InvariantReport:
    """Audit ``index`` against the LIRE end-state invariants.

    ``npa_sample`` live vectors are NPA-checked (0 disables the check);
    ``npa_allowance`` is how many sampled violations are tolerated before
    the report fails — the default scales with the sample because reassign
    legitimately aborts a small number of moves (version races, boundary
    ties) that the next maintenance pass repairs. ``check_size_bounds``
    should be False when auditing a live index whose queue still holds
    split jobs. Returns an :class:`InvariantReport`; callers that want an
    exception use ``report.raise_if_failed()``.
    """
    report = InvariantReport()
    stats = getattr(index, "stats", None)
    if stats is not None:
        stats.incr("invariant_checks")

    live_ids = index.version_map.live_ids()
    report.live_vectors = len(live_ids)
    rng = np.random.default_rng(seed)
    if npa_sample and len(live_ids):
        take = min(npa_sample, len(live_ids))
        sampled = set(
            int(v) for v in rng.choice(live_ids, size=take, replace=False)
        )
    else:
        sampled = set()

    # Single sweep over every posting: collect which postings hold a live
    # replica of each vector, vectors' raw data for the NPA sample, and
    # per-posting length / centroid coherence.
    replica_postings: dict[int, set[int]] = {}
    sampled_vectors: dict[int, np.ndarray] = {}
    quantizer = getattr(index, "quantizer", None)
    posting_ids = index.controller.posting_ids()
    report.postings = len(posting_ids)
    limit = index.config.max_posting_size + size_slack
    for pid in posting_ids:
        try:
            data, _ = index.controller.get(pid)
        except StalePostingError:
            continue  # deleted concurrently while auditing a live index
        if (
            check_size_bounds
            and index.config.enable_split
            and len(data) > limit
        ):
            report.oversized_postings.append((pid, len(data)))
        if pid not in index.centroid_index:
            report.postings_without_centroid.append(pid)
        if quantizer is not None and data.codes is not None and len(data):
            # Encoding is a pure function of the fitted quantizer, so the
            # stored code column must equal re-encoding the stored vectors
            # bit for bit; a difference means some rewrite path (split,
            # merge, flush, GC) broke code/vector coherence.
            expected = quantizer.encode(data.vectors)
            if not np.array_equal(expected, data.codes):
                bad = int(np.count_nonzero(np.any(expected != data.codes, axis=1)))
                report.code_mismatches.append((pid, bad))
        live = live_view(data, index.version_map)
        for row, vid in enumerate(live.ids):
            vid = int(vid)
            replica_postings.setdefault(vid, set()).add(pid)
            if vid in sampled and vid not in sampled_vectors:
                sampled_vectors[vid] = live.vectors[row]

    existing = set(posting_ids)
    for pid, _ in index.centroid_index.items():
        if int(pid) not in existing:
            report.centroids_without_posting.append(int(pid))

    # Fresh-tier conservation: a current-version row buffered in the tier
    # is a live replica of its vector (the WAL keeps it durable), so ids
    # in flight between tier and postings are not "lost". Rows the version
    # map considers dead have no business staying buffered.
    tier_ids: set[int] = set()
    tier = getattr(index, "fresh_tier", None)
    if tier is not None and len(tier) > 0:
        t_ids, t_versions, _ = tier.entries()
        live_rows = index.version_map.live_mask(t_ids, t_versions)
        tier_ids = {int(v) for v in t_ids[live_rows]}
        report.fresh_tier_vectors = len(tier_ids)
        report.stale_tier_entries = sorted(
            int(v) for v in t_ids[~live_rows]
        )

    report.lost_vectors = sorted(
        int(v)
        for v in live_ids
        if int(v) not in replica_postings and int(v) not in tier_ids
    )

    # Sampled NPA: the nearest centroid's posting must hold a live copy,
    # tolerating exact-distance ties between boundary centroids.
    checked = 0
    for vid in sorted(sampled):
        vector = sampled_vectors.get(vid)
        if vector is None:
            # No disk replica: either lost (reported above) or tier-only —
            # a buffered row has no posting assignment to NPA-check yet.
            continue
        hits = index.centroid_index.search(vector, 1)
        if len(hits) == 0:
            continue
        checked += 1
        nearest = hits.nearest
        holders = replica_postings[vid]
        if nearest in holders:
            continue
        d_nearest = sq_l2(vector, index.centroid_index.get(nearest))
        try:
            d_best = min(
                sq_l2(vector, index.centroid_index.get(pid))
                for pid in holders
                if pid in index.centroid_index
            )
        except ValueError:
            d_best = float("inf")
        if d_best > d_nearest * (1.0 + npa_tolerance) + npa_tolerance:
            report.npa_violations.append(vid)
    report.npa_checked = checked
    if npa_allowance is None:
        npa_allowance = max(2, checked // 25)
    report.npa_allowance = npa_allowance
    return report


# ----------------------------------------------------------------------
# cluster-level invariants (conservation extended across shards)
# ----------------------------------------------------------------------


@dataclass
class ClusterInvariantReport:
    """Outcome of one :func:`check_cluster_invariants` sweep.

    ``conservation_violations`` is the aggregate the CI cluster gate
    asserts to be zero: lost ids + misplaced ids + cross-shard duplicates
    + diverged replicas + any per-shard single-node audit failure.
    """

    num_shards: int = 0
    directory_size: int = 0
    cluster_live_vectors: int = 0
    # Directory ids with no live copy in their home shard (lost at
    # cluster level even if some shard-local audit passes).
    lost_ids: list[int] = field(default_factory=list)
    # Shard-live ids the directory does not claim for that shard: either
    # orphans (no directory entry at all) or leftovers a migration failed
    # to delete from the old home (the cross-shard "ghost replica" case).
    misplaced_ids: list[tuple[int, int]] = field(default_factory=list)
    # Ids live in more than one shard at once (each id has exactly one
    # home; a split migrates by delete+insert, never by copy).
    duplicate_ids: list[int] = field(default_factory=list)
    # (shard, replica) pairs whose live id set differs from the primary's
    # (replicas are bit-identical builds fed identical writes).
    diverged_replicas: list[tuple[int, int]] = field(default_factory=list)
    # Placement coherence: shards with zero fine centroids can never be
    # routed to, stranding their vectors.
    unroutable_shards: list[int] = field(default_factory=list)
    # Per-shard single-node audits that failed (shard id -> failures).
    shard_failures: dict[int, list[str]] = field(default_factory=dict)

    @property
    def conservation_violations(self) -> int:
        return (
            len(self.lost_ids)
            + len(self.misplaced_ids)
            + len(self.duplicate_ids)
            + len(self.diverged_replicas)
            + len(self.unroutable_shards)
            + sum(len(f) for f in self.shard_failures.values())
        )

    @property
    def failures(self) -> list[str]:
        out: list[str] = []
        if self.lost_ids:
            out.append(
                f"{len(self.lost_ids)} directory ids have no live copy in "
                f"their home shard (e.g. {self.lost_ids[:5]})"
            )
        if self.misplaced_ids:
            out.append(
                f"{len(self.misplaced_ids)} live rows outside their "
                f"directory home (e.g. {self.misplaced_ids[:5]})"
            )
        if self.duplicate_ids:
            out.append(
                f"{len(self.duplicate_ids)} ids live in multiple shards "
                f"(e.g. {self.duplicate_ids[:5]})"
            )
        if self.diverged_replicas:
            out.append(
                f"replicas diverged from their primary: "
                f"{self.diverged_replicas[:5]}"
            )
        if self.unroutable_shards:
            out.append(f"unroutable shards: {self.unroutable_shards[:5]}")
        for shard_id, failures in sorted(self.shard_failures.items()):
            out.append(f"shard {shard_id}: {'; '.join(failures)}")
        return out

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise InvariantViolation("; ".join(self.failures))


def check_cluster_invariants(
    cluster,
    *,
    check_shards: bool = True,
    npa_sample: int = 64,
    seed: int = 0,
) -> ClusterInvariantReport:
    """Audit a ``ClusterSPFresh`` against cross-shard conservation.

    Extends the single-node conservation story one level up: the
    directory and the shards must agree exactly — every directory id live
    in precisely its home shard, no orphans, no cross-shard duplicates,
    every replica's live id set converged with its group primary, every
    shard reachable by the router. With ``check_shards`` each group
    primary also gets the full single-node :func:`check_invariants`
    sweep (size bounds included, since splits/migrations drain LIRE).
    """
    report = ClusterInvariantReport(
        num_shards=len(cluster.groups),
        directory_size=len(cluster.directory),
    )

    sizes = cluster.placement.group_sizes()
    report.unroutable_shards = [
        int(s) for s in range(cluster.placement.num_shards) if sizes[s] == 0
    ]

    shard_live: dict[int, set[int]] = {}
    for group in cluster.groups:
        primary = group.primary
        primary_ids = {int(v) for v in primary.version_map.live_ids()}
        shard_live[group.shard_id] = primary_ids
        for replica_id in group.live_indices():
            replica = group.replicas[replica_id]
            if replica is primary:
                continue
            ids = {int(v) for v in replica.version_map.live_ids()}
            if ids != primary_ids:
                report.diverged_replicas.append(
                    (group.shard_id, replica_id)
                )
        if check_shards:
            shard_report = check_invariants(
                primary, npa_sample=npa_sample, seed=seed
            )
            if not shard_report.ok:
                report.shard_failures[group.shard_id] = shard_report.failures

    report.cluster_live_vectors = sum(len(s) for s in shard_live.values())

    claimed: dict[int, int] = {}
    for vid, home in cluster.directory.items():
        claimed[vid] = home
        if home not in shard_live or vid not in shard_live[home]:
            report.lost_ids.append(vid)
    report.lost_ids.sort()

    seen: dict[int, int] = {}
    for shard_id, ids in sorted(shard_live.items()):
        for vid in ids:
            if claimed.get(vid) != shard_id:
                report.misplaced_ids.append((vid, shard_id))
            if vid in seen:
                report.duplicate_ids.append(vid)
            else:
                seen[vid] = shard_id
    report.misplaced_ids.sort()
    report.duplicate_ids = sorted(set(report.duplicate_ids))
    return report
