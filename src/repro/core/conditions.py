"""The two NPA necessary conditions for reassignment (paper §3.3).

After a split replaces old centroid ``A_o`` with new centroids ``A_1`` and
``A_2``:

* **Condition 1** (Eq. 1) — a vector ``v`` that ended up in one of the split
  postings must be *considered* for reassignment iff the deleted centroid is
  still at least as close as both new ones:
  ``D(v, A_o) <= D(v, A_i) for all i``. Only then can a neighboring
  centroid possibly beat the new ones.

* **Condition 2** (Eq. 2) — a vector ``v`` in a nearby posting must be
  considered iff some new centroid moved closer than the deleted one:
  ``D(v, A_i) <= D(v, A_o) for some i``. Only then can a new posting beat
  ``v``'s current one.

Both are *necessary* (never miss a true violation) but not sufficient — the
Local Rebuilder re-checks candidates against the full centroid index before
actually moving anything, discarding false positives.
"""

from __future__ import annotations

import numpy as np

from repro.util.distance import pairwise_sq_l2, sq_l2_batch


def condition_one_mask(
    vectors: np.ndarray, old_centroid: np.ndarray, new_centroids: np.ndarray
) -> np.ndarray:
    """Eq. 1 mask for vectors *inside* the split postings.

    True where the deleted centroid is no farther than every new centroid.
    """
    if len(vectors) == 0:
        return np.zeros(0, dtype=bool)
    d_old = sq_l2_batch(old_centroid.astype(np.float32), np.asarray(vectors))
    d_new = pairwise_sq_l2(
        np.asarray(vectors, dtype=np.float32),
        np.asarray(new_centroids, dtype=np.float32),
    )
    return d_old <= d_new.min(axis=1)


def condition_two_mask(
    vectors: np.ndarray, old_centroid: np.ndarray, new_centroids: np.ndarray
) -> np.ndarray:
    """Eq. 2 mask for vectors in *nearby* postings.

    True where at least one new centroid is no farther than the deleted one.
    """
    if len(vectors) == 0:
        return np.zeros(0, dtype=bool)
    d_old = sq_l2_batch(old_centroid.astype(np.float32), np.asarray(vectors))
    d_new = pairwise_sq_l2(
        np.asarray(vectors, dtype=np.float32),
        np.asarray(new_centroids, dtype=np.float32),
    )
    return d_new.min(axis=1) <= d_old
