"""Proactive maintenance scanner.

The paper triggers merges opportunistically — "a merge job is triggered by
the Searcher if it finds some postings are smaller than a minimum length
threshold" (§4.1). Postings that queries never touch can therefore stay
undersized (or garbage-laden) indefinitely. This scanner is the
complementary policy a production deployment runs at low priority: sweep
the posting table, queue merges for undersized postings, GC rewrites for
garbage-heavy ones, and splits for any posting that slipped past the
updater's check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.jobs import FlushJob, MergeJob, SplitJob
from repro.spann.postings import live_view
from repro.util.errors import StalePostingError


@dataclass
class ScanReport:
    """What one sweep saw and scheduled."""

    postings_scanned: int = 0
    merges_scheduled: int = 0
    splits_scheduled: int = 0
    flushes_scheduled: int = 0
    gc_rewrites: int = 0
    dead_entries_seen: int = 0

    @property
    def jobs_scheduled(self) -> int:
        return (
            self.merges_scheduled + self.splits_scheduled + self.flushes_scheduled
        )


class MaintenanceScanner:
    """Sweeps postings and feeds the Local Rebuilder's job queue.

    ``garbage_threshold`` is the dead-entry fraction above which a posting
    is rewritten eagerly instead of waiting for its next split.
    """

    def __init__(self, index, garbage_threshold: float = 0.5) -> None:
        if not 0.0 < garbage_threshold <= 1.0:
            raise ValueError("garbage_threshold must be in (0, 1]")
        self.index = index
        self.garbage_threshold = garbage_threshold

    def scan(self, max_postings: int | None = None, drain: bool = True) -> ScanReport:
        """One sweep over (up to ``max_postings``) postings."""
        report = ScanReport()
        config = self.index.config
        # Inserts below fresh_flush_threshold would otherwise sit in the
        # tier indefinitely (the updater only requests a flush at the
        # threshold) — the scanner is the low-priority sweep that drains
        # stragglers, the same policy it applies to untouched postings.
        tier = getattr(self.index, "fresh_tier", None)
        if tier is not None and len(tier) > 0:
            if self.index.job_queue.put(FlushJob()):
                report.flushes_scheduled += 1
        for pid in self.index.controller.posting_ids():
            if max_postings is not None and report.postings_scanned >= max_postings:
                break
            try:
                data, _ = self.index.controller.get(pid)
            except StalePostingError:
                continue  # deleted concurrently; real storage errors propagate
            report.postings_scanned += 1
            live = live_view(data, self.index.version_map)
            dead = len(data) - len(live)
            report.dead_entries_seen += dead
            if len(live) > config.max_posting_size and config.enable_split:
                if self.index.job_queue.put(SplitJob(posting_id=pid)):
                    report.splits_scheduled += 1
            elif len(live) < config.min_posting_size and config.enable_merge:
                if self.index.job_queue.put(MergeJob(posting_id=pid)):
                    report.merges_scheduled += 1
            elif dead and dead / len(data) >= self.garbage_threshold:
                with self.index.locks.hold(pid):
                    if self.index.controller.exists(pid):
                        self.index.rebuilder.background_io_us += (
                            self.index.controller.put(pid, live)
                        )
                        self.index.stats.incr("gc_writebacks")
                        report.gc_rewrites += 1
        if drain and self.index.config.synchronous_rebuild:
            self.index.drain()
        return report
