"""Job types and queue for the Local Rebuilder pipeline (paper §4.2).

The foreground Updater produces jobs; background rebuild threads consume
them. Jobs carry everything needed to execute without re-reading foreground
state, except data that must be re-validated at execution time (posting
contents, vector versions) — re-validation is what makes the pipeline safe
under concurrency.

Both the queue and the lock manager accept an optional ``chaos`` hook — a
callable ``chaos(point: str, detail: int | None)`` invoked at the
scheduling boundaries where thread interleavings matter (job dequeue, lock
acquisition). The stress harness (``repro.bench.stress``) installs a
seeded schedule there to force adversarial yields; production leaves it
``None`` and pays only an attribute check.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

ChaosHook = Optional[Callable[[str, Optional[int]], None]]


@dataclass(frozen=True)
class SplitJob:
    """Garbage-collect and, if still oversized, split a posting."""

    posting_id: int
    cascade_depth: int = 0


@dataclass(frozen=True)
class MergeJob:
    """Merge an undersized posting into its nearest neighbor."""

    posting_id: int


@dataclass(frozen=True)
class ReassignJob:
    """Re-evaluate one vector's posting assignment.

    ``expected_version`` is the version observed when the candidate was
    collected; the CAS against the version map aborts the job if the vector
    was concurrently reassigned or deleted.
    """

    vector_id: int
    vector: np.ndarray
    expected_version: int
    source_posting: int
    attempts: int = 0


@dataclass(frozen=True)
class FlushJob:
    """Drain the in-memory fresh tier into postings (docs/fresh-tier.md).

    ``max_vectors`` bounds one flush (None drains the whole tier); tests
    use it to park the index in a mid-flush state. The job snapshots the
    tier at execution time, so one pending job absorbs any number of
    inserts that arrive before it runs — hence the single-flag dedup.
    """

    max_vectors: int | None = None


RebuildJob = object  # union alias for documentation purposes


class JobQueue:
    """FIFO of rebuild jobs with pending-count tracking and dedup.

    ``task_done``/``join`` semantics follow :class:`queue.Queue` so the
    synchronous driver can wait for full drain including cascades.

    Split and merge jobs are deduplicated by posting id: only one pending
    job per (kind, posting) is ever useful because the job re-reads the
    posting at execution time and handles all accumulated change at once.
    The marker is cleared at dequeue so events landing *while* the job runs
    can schedule a fresh one.
    """

    def __init__(self, chaos: ChaosHook = None) -> None:
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._pending_splits: set[int] = set()
        self._pending_merges: set[int] = set()
        self._flush_pending = False
        self._dedup_lock = threading.Lock()
        self.chaos: ChaosHook = chaos

    def put(self, job: object) -> bool:
        """Enqueue a job; returns False if dedup dropped it as redundant."""
        if isinstance(job, SplitJob):
            with self._dedup_lock:
                if job.posting_id in self._pending_splits:
                    return False
                self._pending_splits.add(job.posting_id)
        elif isinstance(job, MergeJob):
            # Every search probing the same undersized posting reports it
            # again; without dedup each report enqueued another merge job.
            with self._dedup_lock:
                if job.posting_id in self._pending_merges:
                    return False
                self._pending_merges.add(job.posting_id)
        elif isinstance(job, FlushJob):
            # Every insert past the tier threshold re-requests a flush; one
            # pending job drains everything buffered when it runs.
            with self._dedup_lock:
                if self._flush_pending:
                    return False
                self._flush_pending = True
        self._queue.put(job)
        return True

    def get(self, timeout: float | None = None, *, block: bool = False) -> object:
        """Dequeue one job, raising :class:`queue.Empty` when none is ready.

        Blocking is explicit: ``block=False`` (the default) never waits,
        regardless of ``timeout``; ``block=True`` waits up to ``timeout``
        seconds, or forever when ``timeout`` is None. (The previous
        implementation inferred blocking from the truthiness of ``timeout``,
        so ``get(timeout=0)`` silently became non-blocking and
        ``get(timeout=None)`` could never block.)
        """
        chaos = self.chaos
        if chaos is not None:
            chaos("queue.get", None)
        if block:
            job = self._queue.get(block=True, timeout=timeout)
        else:
            job = self._queue.get_nowait()
        if isinstance(job, SplitJob):
            with self._dedup_lock:
                self._pending_splits.discard(job.posting_id)
        elif isinstance(job, MergeJob):
            with self._dedup_lock:
                self._pending_merges.discard(job.posting_id)
        elif isinstance(job, FlushJob):
            with self._dedup_lock:
                self._flush_pending = False
        if chaos is not None:
            chaos("queue.got", getattr(job, "posting_id", None))
        return job

    def task_done(self) -> None:
        self._queue.task_done()

    def join(self) -> None:
        self._queue.join()

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    def empty(self) -> bool:
        return self._queue.empty()


class _LockEntry:
    """One posting's lock plus the bookkeeping that keeps it alive.

    ``refs`` counts threads currently inside :meth:`PostingLockManager.hold`
    for this posting (blocked or holding). ``retired`` marks the posting as
    deleted; the entry is physically dropped only when the last reference
    goes away, so every contender observes the *same* lock object for the
    posting's entire lifetime.
    """

    __slots__ = ("lock", "refs", "retired")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        self.refs = 0
        self.retired = False


class PostingLockManager:
    """Fine-grained posting-level write locks (paper §4.2.2).

    Append, split, and merge serialize per posting; reads stay lock-free.
    ``hold`` acquires multiple locks in sorted id order to avoid deadlock
    between concurrent merges touching overlapping postings.

    Lock entries are refcounted. A naive ``dict[pid, RLock]`` with
    ``forget`` popping the entry has a lifecycle race: thread A holds the
    lock, thread B is blocked on the same lock object, ``forget`` drops the
    dict entry, and thread C then mints a *fresh* lock for the same posting
    id — C and A (or C and B) now run "mutually excluded" critical sections
    concurrently. Here ``forget`` only marks the entry retired; the entry
    is recycled when the reference count reaches zero, so all contenders
    for a posting id always share one lock object.
    """

    def __init__(self, stats=None, chaos: ChaosHook = None) -> None:
        self._meta = threading.Lock()
        self._locks: dict[int, _LockEntry] = {}
        self.stats = stats
        self.chaos: ChaosHook = chaos
        self.contention_checks = 0
        self.contention_hits = 0
        self.lock_recycles = 0

    # ------------------------------------------------------------------
    # entry lifecycle
    # ------------------------------------------------------------------
    def _pin(self, posting_id: int) -> _LockEntry:
        """Look up (or create) the entry and take a reference on it."""
        with self._meta:
            entry = self._locks.get(posting_id)
            if entry is None:
                entry = _LockEntry()
                self._locks[posting_id] = entry
            entry.refs += 1
            return entry

    def _unpin(self, posting_id: int, entry: _LockEntry) -> None:
        """Drop a reference; recycle the entry if it was the last one."""
        with self._meta:
            entry.refs -= 1
            if (
                entry.refs == 0
                and entry.retired
                and self._locks.get(posting_id) is entry
            ):
                del self._locks[posting_id]
                self._count_recycle()

    def _count_recycle(self) -> None:
        self.lock_recycles += 1
        if self.stats is not None:
            self.stats.incr("lock_recycles")

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @contextmanager
    def hold(self, *posting_ids: int):
        ordered = sorted(set(posting_ids))
        chaos = self.chaos
        pinned = [(pid, self._pin(pid)) for pid in ordered]
        acquired: list[_LockEntry] = []
        try:
            for pid, entry in pinned:
                if chaos is not None:
                    chaos("lock.acquire", pid)
                self.contention_checks += 1
                if not entry.lock.acquire(blocking=False):
                    self.contention_hits += 1
                    entry.lock.acquire()
                acquired.append(entry)
                if chaos is not None:
                    chaos("lock.acquired", pid)
            yield
        finally:
            for entry in reversed(acquired):
                entry.lock.release()
            for pid, entry in pinned:
                self._unpin(pid, entry)

    def forget(self, posting_id: int) -> None:
        """Retire the lock of a deleted posting (bounds memory).

        The entry is dropped immediately only if no thread references it;
        otherwise the last contender to leave :meth:`hold` recycles it.
        Posting ids are never reused, so a retired-but-referenced entry
        staying in the table cannot collide with a future posting.
        """
        with self._meta:
            entry = self._locks.get(posting_id)
            if entry is None:
                return
            entry.retired = True
            if entry.refs == 0:
                del self._locks[posting_id]
                self._count_recycle()

    @property
    def live_locks(self) -> int:
        """Number of lock entries currently in the table (for tests/stats)."""
        with self._meta:
            return len(self._locks)

    @property
    def contention_rate(self) -> float:
        if self.contention_checks == 0:
            return 0.0
        return self.contention_hits / self.contention_checks
