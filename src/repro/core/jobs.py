"""Job types and queue for the Local Rebuilder pipeline (paper §4.2).

The foreground Updater produces jobs; background rebuild threads consume
them. Jobs carry everything needed to execute without re-reading foreground
state, except data that must be re-validated at execution time (posting
contents, vector versions) — re-validation is what makes the pipeline safe
under concurrency.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class SplitJob:
    """Garbage-collect and, if still oversized, split a posting."""

    posting_id: int
    cascade_depth: int = 0


@dataclass(frozen=True)
class MergeJob:
    """Merge an undersized posting into its nearest neighbor."""

    posting_id: int


@dataclass(frozen=True)
class ReassignJob:
    """Re-evaluate one vector's posting assignment.

    ``expected_version`` is the version observed when the candidate was
    collected; the CAS against the version map aborts the job if the vector
    was concurrently reassigned or deleted.
    """

    vector_id: int
    vector: np.ndarray
    expected_version: int
    source_posting: int
    attempts: int = 0


RebuildJob = object  # union alias for documentation purposes


class JobQueue:
    """FIFO of rebuild jobs with pending-count tracking.

    ``task_done``/``join`` semantics follow :class:`queue.Queue` so the
    synchronous driver can wait for full drain including cascades.
    """

    def __init__(self) -> None:
        self._queue: "queue.Queue[object]" = queue.Queue()
        self._pending_splits: set[int] = set()
        self._split_lock = threading.Lock()

    def put(self, job: object) -> None:
        if isinstance(job, SplitJob):
            # Bulk appends enqueue one split request per append; only one
            # pending split per posting is ever useful (the job re-reads
            # the posting and handles all accumulated growth at once).
            with self._split_lock:
                if job.posting_id in self._pending_splits:
                    return
                self._pending_splits.add(job.posting_id)
        self._queue.put(job)

    def get(self, timeout: float | None = None) -> object:
        job = (
            self._queue.get(timeout=timeout) if timeout else self._queue.get_nowait()
        )
        if isinstance(job, SplitJob):
            # Clear the dedup marker at dequeue time: appends landing while
            # the split runs must be able to schedule a fresh job.
            with self._split_lock:
                self._pending_splits.discard(job.posting_id)
        return job

    def task_done(self) -> None:
        self._queue.task_done()

    def join(self) -> None:
        self._queue.join()

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    def empty(self) -> bool:
        return self._queue.empty()


class PostingLockManager:
    """Fine-grained posting-level write locks (paper §4.2.2).

    Append, split, and merge serialize per posting; reads stay lock-free.
    ``hold`` acquires multiple locks in sorted id order to avoid deadlock
    between concurrent merges touching overlapping postings.
    """

    def __init__(self) -> None:
        self._meta = threading.Lock()
        self._locks: dict[int, threading.RLock] = {}
        self.contention_checks = 0
        self.contention_hits = 0

    def _lock_for(self, posting_id: int) -> threading.RLock:
        with self._meta:
            lock = self._locks.get(posting_id)
            if lock is None:
                lock = threading.RLock()
                self._locks[posting_id] = lock
            return lock

    @contextmanager
    def hold(self, *posting_ids: int):
        ordered = sorted(set(posting_ids))
        locks = [self._lock_for(pid) for pid in ordered]
        acquired: list[threading.RLock] = []
        try:
            for lock in locks:
                self.contention_checks += 1
                if not lock.acquire(blocking=False):
                    self.contention_hits += 1
                    lock.acquire()
                acquired.append(lock)
            yield
        finally:
            for lock in reversed(acquired):
                lock.release()

    def forget(self, posting_id: int) -> None:
        """Drop the lock object of a deleted posting (bounds memory)."""
        with self._meta:
            self._locks.pop(posting_id, None)

    @property
    def contention_rate(self) -> float:
        if self.contention_checks == 0:
            return 0.0
        return self.contention_hits / self.contention_checks
