"""Public SPFresh index facade (paper §4).

:class:`SPFreshIndex` composes the SPANN substrate (static build, centroid
index, searcher), the storage engine (simulated SSD + Block Controller),
and the LIRE pipeline (Updater + Local Rebuilder) behind the interface a
vector-database user expects::

    index = SPFreshIndex.build(vectors, config=SPFreshConfig(dim=32))
    index.insert(vector_id, vector)
    index.delete(vector_id)
    response = index.query(QueryRequest.single(query, k=10))
    response.ids, response.distances, response.latency_us

Queries travel as typed :class:`~repro.api.QueryRequest` objects (knobs:
``nprobe``, ``rerank_k``, ``quantized``, ``tenant``); the positional
``search(vector, k)`` form survives for external callers but is
deprecated — see ``docs/api.md``.

Construction paths: :meth:`build` (static SPANN build), :meth:`recover`
(snapshot + WAL replay after a crash). Rebuild jobs run inline by default
(``config.synchronous_rebuild``) or on background threads via
:meth:`start` / :meth:`stop`.
"""

from __future__ import annotations

import numpy as np

from repro.api import QueryRequest, SearchResponse, warn_legacy_query
from repro.centroids import make_centroid_index
from repro.core.config import SPFreshConfig
from repro.core.fresh_tier import FreshTier
from repro.core.ids import IdAllocator
from repro.core.jobs import FlushJob, JobQueue, MergeJob, PostingLockManager
from repro.core.rebuilder import LocalRebuilder
from repro.core.stats import LireStats
from repro.core.updater import Updater
from repro.core.version_map import VersionMap
from repro.metrics.profiling import Profiler, format_report
from repro.spann.build import build_plan
from repro.spann.searcher import SearchResult, SpannSearcher
from repro.storage.controller import BlockController
from repro.quantize import make_quantizer
from repro.storage.layout import PostingCodec, PostingData, QuantizedPostingCodec
from repro.storage.snapshot import SnapshotManager
from repro.storage.ssd import SimulatedSSD, SSDProfile
from repro.storage.wal import WriteAheadLog
from repro.util.distance import as_matrix, as_vector
from repro.util.errors import StalePostingError

__all__ = ["SPFreshIndex", "SearchResult"]


class SPFreshIndex:
    """Disk-based ANNS index with in-place updates via LIRE."""

    def __init__(
        self,
        config: SPFreshConfig,
        ssd: SimulatedSSD,
        controller: BlockController,
        centroid_index,
        version_map: VersionMap,
        posting_ids: IdAllocator,
        wal: WriteAheadLog | None = None,
        snapshots: SnapshotManager | None = None,
    ) -> None:
        self.config = config.validate()
        self.ssd = ssd
        self.controller = controller
        self.centroid_index = centroid_index
        self.version_map = version_map
        self.posting_ids = posting_ids
        self.wal = wal
        self.snapshots = snapshots
        self.stats = LireStats()
        self.locks = PostingLockManager(stats=self.stats)
        self.job_queue = JobQueue()
        # One profiler instance spans the whole engine so a snapshot shows
        # where wall-clock time went across search, storage and rebuilds.
        self.profiler = Profiler(enabled=config.enable_profiling)
        controller.profiler = self.profiler
        # LSM-style memory tier for fresh writes (docs/fresh-tier.md).
        # None when disabled so every component keeps the classic path.
        self.fresh_tier = (
            FreshTier(config.dim, version_map)
            if config.enable_fresh_tier
            else None
        )
        self.updater = Updater(
            centroid_index,
            controller,
            version_map,
            self.locks,
            self.job_queue,
            self.stats,
            config,
            posting_ids,
            wal=wal,
            profiler=self.profiler,
            fresh_tier=self.fresh_tier,
        )
        self.rebuilder = LocalRebuilder(
            centroid_index,
            controller,
            version_map,
            self.locks,
            self.job_queue,
            self.stats,
            config,
            posting_ids,
            rng=np.random.default_rng(config.seed + 1),
            profiler=self.profiler,
            fresh_tier=self.fresh_tier,
        )
        # The fitted quantizer lives on the codec when the index stores
        # compressed codes (docs/quantization.md); None on the exact layout.
        self.quantizer = getattr(controller.codec, "quantizer", None)
        self.searcher = SpannSearcher(
            centroid_index,
            controller,
            version_map,
            default_nprobe=config.default_nprobe,
            latency_budget_us=config.search_latency_budget_us,
            cpu_cost_per_entry_us=config.cpu_cost_per_entry_us,
            cpu_cost_per_query_us=config.cpu_cost_per_query_us,
            min_posting_size=config.min_posting_size,
            prune_epsilon=config.search_prune_epsilon,
            profiler=self.profiler,
            fresh_tier=self.fresh_tier,
            rerank_k=config.quantize.rerank_k,
        )
        self._background_running = False
        # Populated by restore_index() after a crash recovery; None for a
        # freshly built index. See repro.core.recovery.RecoveryReport.
        self.last_recovery = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        ids: np.ndarray | None = None,
        config: SPFreshConfig | None = None,
        wal: WriteAheadLog | None = None,
        snapshots: SnapshotManager | None = None,
        device: SimulatedSSD | None = None,
    ) -> "SPFreshIndex":
        """Build a fresh index from a static vector set (SPANN build).

        ``device`` lets callers supply a pre-constructed block device — in
        particular a :class:`repro.storage.filedev.FileBackedSSD` for a
        durable index that a later process can :meth:`recover`.
        """
        vectors = as_matrix(vectors)
        config = (config or SPFreshConfig(dim=vectors.shape[1])).validate()
        if config.dim != vectors.shape[1]:
            config = config.with_overrides(dim=vectors.shape[1])
        if ids is None:
            ids = np.arange(len(vectors), dtype=np.int64)
        ids = np.asarray(ids, dtype=np.int64)
        if len(ids) != len(vectors):
            raise ValueError("ids and vectors must have the same length")

        rng = np.random.default_rng(config.seed)
        plan = build_plan(vectors, config, rng)

        ssd = device or SimulatedSSD(
            config.ssd_blocks,
            SSDProfile(
                block_size=config.block_size,
                read_latency_us=config.read_latency_us,
                write_latency_us=config.write_latency_us,
                queue_depth=config.queue_depth,
            ),
        )
        if config.quantize.enabled:
            # Codebooks are trained once at build time on (a sample of)
            # the base vectors, then persisted in snapshots; the codec
            # owns the fitted quantizer so every posting rewrite re-encodes
            # codes deterministically (docs/quantization.md).
            quantizer = make_quantizer(
                config.quantize.kind,
                config.dim,
                subspaces=config.quantize.pq_subspaces,
                codebook_size=config.quantize.pq_codebook_size,
            )
            if config.quantize.kind == "pq":
                quantizer.fit(
                    vectors,
                    rng,
                    max_iters=config.quantize.train_iters,
                    sample_size=config.quantize.train_sample,
                )
            else:
                quantizer.fit(vectors, rng)
            codec = QuantizedPostingCodec(config.dim, config.block_size, quantizer)
        else:
            codec = PostingCodec(config.dim, config.block_size)
        controller = BlockController(ssd, codec)
        version_map = VersionMap(initial_capacity=max(int(ids.max()) + 1, 1024))
        for vid in ids:
            version_map.register(int(vid))

        centroid_index = make_centroid_index(config.centroid_index_kind, config.dim)
        for pid, (centroid, rows) in enumerate(zip(plan.centroids, plan.members)):
            posting = PostingData.from_rows(
                ids[rows], np.zeros(len(rows), dtype=np.uint8), vectors[rows]
            )
            controller.create(pid, posting)
            centroid_index.add(pid, centroid)

        index = cls(
            config=config,
            ssd=ssd,
            controller=controller,
            centroid_index=centroid_index,
            version_map=version_map,
            posting_ids=IdAllocator(plan.num_postings),
            wal=wal,
            snapshots=snapshots,
        )
        # Boundary replication can leave dense-region postings over the
        # split limit; normalize them immediately so the index starts in
        # the well-balanced state LIRE's lightweight maintenance assumes.
        if config.enable_split:
            from repro.core.jobs import SplitJob

            for pid in controller.posting_ids():
                if controller.length(pid) > config.max_posting_size:
                    index.job_queue.put(SplitJob(posting_id=pid))
            index.rebuilder.drain()
        if snapshots is not None:
            # Copy-on-write deferral keeps snapshot-referenced blocks
            # readable until the next checkpoint flushes the pre-release
            # buffer. Without a snapshot manager nothing ever needs the
            # superseded blocks, so they recycle immediately.
            controller.begin_defer_release()
        return index

    @classmethod
    def recover(
        cls,
        ssd: SimulatedSSD,
        config: SPFreshConfig,
        snapshots: SnapshotManager,
        wal: WriteAheadLog | None = None,
    ) -> "SPFreshIndex":
        """Restore an index from the latest snapshot plus WAL replay (§4.4)."""
        from repro.core.recovery import restore_index  # local import: cycle

        return restore_index(cls, ssd, config, snapshots, wal)

    # ------------------------------------------------------------------
    # queries and updates
    # ------------------------------------------------------------------
    def query(self, request: QueryRequest) -> SearchResponse:
        """Answer a typed :class:`~repro.api.QueryRequest`.

        The one search entry point every other signature funnels into:
        single-vector requests run the scalar searcher path, batches the
        vectorized one, and both share the maintenance side effect
        (undersized postings seen during navigation schedule merge jobs).
        """
        if not isinstance(request, QueryRequest):
            raise TypeError(
                f"query() wants a repro.api.QueryRequest, got "
                f"{type(request).__name__}"
            )
        if len(request.vectors) == 0:
            # An empty batch is well-defined: nothing probed, no results.
            return SearchResponse(results=(), request=request)
        if request.is_single:
            results = [
                self.searcher.search(
                    as_vector(request.vectors[0], self.config.dim),
                    request.k,
                    request.nprobe,
                    rerank_k=request.rerank_k,
                    quantized=request.quantized,
                )
            ]
        else:
            results = self.searcher.search_many(
                as_matrix(request.vectors, self.config.dim),
                request.k,
                request.nprobe,
                rerank_k=request.rerank_k,
                quantized=request.quantized,
            )
        if self.config.enable_merge:
            scheduled = False
            for result in results:
                for pid in result.undersized_postings:
                    scheduled = (
                        self.job_queue.put(MergeJob(posting_id=pid)) or scheduled
                    )
            if scheduled and self.config.synchronous_rebuild:
                self.rebuilder.drain()
        return SearchResponse(results=tuple(results), request=request)

    def search(self, query, k: int | None = None, nprobe: int | None = None):
        """Search facade: ``QueryRequest`` in, :class:`SearchResponse` out.

        The positional form ``search(vector, k, nprobe)`` returning a
        bare ``SearchResult`` is deprecated (kept for external callers).
        """
        if isinstance(query, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(query)
        warn_legacy_query("SPFreshIndex.search")
        if k is None:
            raise TypeError("search(vector, k) requires k")
        request = QueryRequest.single(
            as_vector(query, self.config.dim), k=k, nprobe=nprobe
        )
        return self.query(request).result

    def insert(self, vector_id: int, vector: np.ndarray) -> float:
        """Insert one vector; returns foreground simulated latency (us)."""
        latency = self.updater.insert(vector_id, vector)
        self._maybe_drain()
        return latency

    def delete(self, vector_id: int) -> float:
        """Delete one vector (tombstone; space reclaimed lazily)."""
        latency = self.updater.delete(vector_id)
        self._maybe_drain()
        return latency

    def search_batch(self, queries, k: int | None = None, nprobe: int | None = None):
        """Batched search facade: one ParallelGET serves all queries.

        ``QueryRequest`` in → :class:`SearchResponse` out. The positional
        ``search_batch(matrix, k, nprobe)`` form returning a list of
        ``SearchResult`` is deprecated (kept for external callers).
        """
        if isinstance(queries, QueryRequest):
            if k is not None or nprobe is not None:
                raise TypeError(
                    "pass k/nprobe inside the QueryRequest, not alongside it"
                )
            return self.query(queries)
        warn_legacy_query("SPFreshIndex.search_batch")
        if k is None:
            raise TypeError("search_batch(queries, k) requires k")
        queries = as_matrix(queries, self.config.dim)
        request = QueryRequest(vectors=queries, k=k, nprobe=nprobe)
        return list(self.query(request).results)

    # Batched alias so engine-shaped callers (serving frontend, sharded
    # scatter-gather) can duck-type either name.
    search_many = search_batch

    def insert_batch(self, ids: np.ndarray, vectors: np.ndarray) -> list[float]:
        vectors = as_matrix(vectors, self.config.dim)
        return [self.insert(int(vid), vec) for vid, vec in zip(ids, vectors)]

    def delete_batch(self, ids: np.ndarray) -> list[float]:
        return [self.delete(int(vid)) for vid in ids]

    def _maybe_drain(self) -> None:
        if self.config.synchronous_rebuild and not self._background_running:
            self.rebuilder.drain()

    # ------------------------------------------------------------------
    # background pipeline control
    # ------------------------------------------------------------------
    def start(self, num_workers: int | None = None) -> None:
        """Start background rebuild workers (asynchronous pipeline mode)."""
        self.rebuilder.start(num_workers)
        self._background_running = True

    def stop(self) -> None:
        """Drain outstanding jobs and stop background workers."""
        if self._background_running:
            self.rebuilder.wait_idle()
            self.rebuilder.stop()
            self._background_running = False

    def drain(self) -> int:
        """Run all pending rebuild jobs to completion (synchronous)."""
        if self._background_running:
            self.rebuilder.wait_idle()
            return 0
        return self.rebuilder.drain()

    def flush_fresh_tier(self, max_vectors: int | None = None) -> int:
        """Flush buffered fresh-tier vectors to postings now.

        Returns the number of vectors moved to disk. A no-op (returning 0)
        when the tier is disabled or empty. ``max_vectors`` bounds one
        flush — tests use it to park the index mid-flush.
        """
        if self.fresh_tier is None or len(self.fresh_tier) == 0:
            return 0
        before = self.stats.fresh_flushed_vectors
        self.job_queue.put(FlushJob(max_vectors=max_vectors))
        self.drain()
        return self.stats.fresh_flushed_vectors - before

    # ------------------------------------------------------------------
    # maintenance / introspection
    # ------------------------------------------------------------------
    def profile_snapshot(self) -> dict[str, dict]:
        """Wall-clock profile per stage (empty unless ``enable_profiling``)."""
        return self.profiler.snapshot()

    def profile_report(self, title: str = "wall-clock profile") -> str:
        """Human-readable table of :meth:`profile_snapshot`."""
        return format_report(self.profile_snapshot(), title)

    def check_invariants(self, **kwargs):
        """Audit the index against the LIRE end-state invariants.

        Thin wrapper over :func:`repro.core.invariants.check_invariants`;
        see that module for the properties verified and the knobs.
        """
        from repro.core.invariants import check_invariants

        return check_invariants(self, **kwargs)

    def checkpoint(self) -> int:
        """Take a crash-consistent snapshot and truncate the WAL (§4.4)."""
        if self.snapshots is None:
            raise ValueError("index was created without a SnapshotManager")
        # The snapshot captures only disk-resident postings, so buffered
        # fresh-tier rows must land on disk before the WAL (their only
        # durable record) is truncated.
        self.flush_fresh_tier()
        self.drain()
        from repro.core.recovery import collect_state

        generation = self.snapshots.save(collect_state(self))
        # Blocks freed before this snapshot are now unreachable from any
        # restorable state: release them and open a new deferral window.
        self.controller.end_defer_release()
        self.controller.begin_defer_release()
        if self.wal is not None:
            self.wal.truncate()
        return generation

    def gc_pass(self, max_postings: int | None = None) -> int:
        """Rewrite postings to drop dead entries; returns postings rewritten.

        SPFresh performs GC lazily inside split jobs; this explicit pass is
        what the SPANN+ baseline's background garbage collection uses.
        """
        rewritten = 0
        for pid in self.controller.posting_ids():
            if max_postings is not None and rewritten >= max_postings:
                break
            with self.locks.hold(pid):
                if not self.controller.exists(pid):
                    continue
                data, io_us = self.controller.get(pid)
                self.rebuilder.background_io_us += io_us
                live_mask = self.version_map.live_mask(data.ids, data.versions)
                if live_mask.all():
                    continue
                self.rebuilder.background_io_us += self.controller.put(
                    pid, data.select(live_mask)
                )
                self.stats.incr("gc_writebacks")
                rewritten += 1
        return rewritten

    @property
    def num_postings(self) -> int:
        return self.controller.num_postings

    @property
    def live_vector_count(self) -> int:
        return self.version_map.live_count

    def posting_sizes(self) -> np.ndarray:
        """On-disk entry counts per posting (includes stale replicas)."""
        return np.array(
            [self.controller.length(pid) for pid in self.controller.posting_ids()],
            dtype=np.int64,
        )

    def memory_bytes(self) -> int:
        """Modelled DRAM footprint: centroids + version map + block mapping
        (+ buffered fresh-tier rows when the tier is enabled)."""
        total = (
            self.centroid_index.memory_bytes()
            + self.version_map.memory_bytes()
            + self.controller.mapping_memory_bytes()
        )
        if self.fresh_tier is not None:
            total += self.fresh_tier.memory_bytes()
        return total

    def replica_histogram(self) -> dict[int, int]:
        """Live replica count distribution across postings (§5.2.2 stat)."""
        counts: dict[int, int] = {}
        for pid in self.controller.posting_ids():
            try:
                data, _ = self.controller.get(pid)
            except StalePostingError:
                continue  # deleted concurrently; real storage errors propagate
            mask = self.version_map.live_mask(data.ids, data.versions)
            for vid in data.ids[mask]:
                counts[int(vid)] = counts.get(int(vid), 0) + 1
        histogram: dict[int, int] = {}
        for replica_count in counts.values():
            histogram[replica_count] = histogram.get(replica_count, 0) + 1
        return histogram
