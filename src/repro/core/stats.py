"""Operation counters for the LIRE pipeline (paper §5.2.2 micro-stats).

The paper reports, e.g., "only 0.4% of insertions cause rebalancing",
"each time 5094 vectors are evaluated and only 79 are actually reassigned".
``LireStats`` tracks exactly those quantities so the Figure-7 bench can
print the reproduction's counterparts.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields


@dataclass
class StatsSnapshot:
    """Immutable copy of all counters at one instant."""

    inserts: int = 0
    deletes: int = 0
    appends: int = 0
    splits: int = 0
    split_jobs: int = 0
    gc_writebacks: int = 0
    merges: int = 0
    merge_jobs: int = 0
    reassign_evaluated: int = 0
    reassign_scheduled: int = 0
    reassign_executed: int = 0
    reassign_aborted_version: int = 0
    reassign_aborted_npa: int = 0
    reassign_posting_missing: int = 0
    split_cascade_max_depth: int = 0
    # Fresh tier (LSM-style memory tier, docs/fresh-tier.md).
    fresh_inserts: int = 0  # inserts absorbed by the tier
    fresh_discards: int = 0  # tier rows dropped by deletes
    fresh_flush_jobs: int = 0
    fresh_flushes: int = 0  # flush jobs that moved at least one vector
    fresh_flushed_vectors: int = 0
    fresh_flush_appends: int = 0  # grouped posting appends issued by flushes
    # Concurrency-correctness layer (lock lifecycle, chaos harness).
    lock_recycles: int = 0
    chaos_yields: int = 0
    invariant_checks: int = 0
    worker_errors: int = 0
    # Durability layer (crash recovery, fault injection). Mirrors the
    # fields of the last RecoveryReport so dashboards that only see
    # counters still observe quarantined/failed WAL records.
    recoveries: int = 0
    wal_records_replayed: int = 0
    wal_records_skipped: int = 0
    wal_records_quarantined: int = 0
    recovery_apply_errors: int = 0

    def delta(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        values = {
            f.name: getattr(self, f.name) - getattr(earlier, f.name)
            for f in fields(self)
            if f.name != "split_cascade_max_depth"
        }
        values["split_cascade_max_depth"] = self.split_cascade_max_depth
        return StatsSnapshot(**values)


@dataclass
class LireStats:
    """Thread-safe counters; ``snapshot()`` for reporting windows."""

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _values: StatsSnapshot = field(default_factory=StatsSnapshot)

    def incr(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self._values, name, getattr(self._values, name) + amount)

    def observe_cascade_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self._values.split_cascade_max_depth:
                self._values.split_cascade_max_depth = depth

    def snapshot(self) -> StatsSnapshot:
        with self._lock:
            return StatsSnapshot(
                **{
                    f.name: getattr(self._values, f.name)
                    for f in fields(StatsSnapshot)
                }
            )

    def __getattr__(self, name: str) -> int:
        # Convenience read access: stats.splits etc. (dataclass fields and
        # methods resolve normally; only unknown lookups land here).
        values = object.__getattribute__(self, "_values")
        if hasattr(values, name):
            with object.__getattribute__(self, "_lock"):
                return getattr(values, name)
        raise AttributeError(name)
