"""Setuptools shim: enables `pip install -e .` on environments without the
`wheel` package (PEP 660 editable builds need it; the legacy path does not).
"""

from setuptools import setup

setup()
